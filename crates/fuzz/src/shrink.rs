//! Greedy minimization of oracle-violating specs.
//!
//! When an oracle flags a generated spec, the raw program is usually
//! far bigger than the disagreement it witnesses. The shrinker runs the
//! classic greedy fixpoint: propose structurally smaller variants
//! (drop a relation, a rule, a premise, a constructor; simplify a
//! term), keep a variant iff the *same* oracle still fires on it, and
//! stop when no proposal makes progress. The result is the checked-in
//! regression artifact: minimal DSL text plus the oracle it violates.

use crate::oracles::{run_dsl_with, Oracle, OracleParams};
use crate::spec::{Spec, SpecPremise, SpecTerm, SpecType};

/// Outcome of shrinking one failing spec.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized spec (still violates the oracle).
    pub spec: Spec,
    /// The oracle the minimized spec violates.
    pub oracle: Oracle,
    /// Number of accepted shrink steps.
    pub steps: usize,
    /// Number of oracle executions spent shrinking.
    pub attempts: usize,
}

/// Hard cap on oracle executions per shrink, so a pathological spec
/// cannot stall the whole campaign.
const MAX_ATTEMPTS: usize = 300;

/// Minimizes `spec`, which must already violate `oracle` under
/// `params`. Greedy: accepts the first candidate that still violates
/// the same oracle and restarts proposal generation from it.
pub fn shrink_spec(spec: &Spec, oracle: Oracle, params: &OracleParams) -> ShrinkResult {
    let mut current = spec.clone();
    let mut steps = 0;
    let mut attempts = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            let still_fails = run_dsl_with(&cand.emit(), params)
                .violation()
                .is_some_and(|(o, _)| o == oracle);
            if still_fails {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        spec: current,
        oracle,
        steps,
        attempts,
    }
}

/// Structurally smaller variants of `spec`, most aggressive first.
/// Every candidate is well-formed: indices are remapped after removals
/// and removals that would break a reference are not proposed.
pub fn candidates(spec: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();
    drop_relations(spec, &mut out);
    drop_rules(spec, &mut out);
    drop_premises(spec, &mut out);
    drop_adts(spec, &mut out);
    drop_ctors(spec, &mut out);
    shrink_terms(spec, &mut out);
    out
}

/// `true` if any rule of any relation other than `rel` references `rel`.
fn rel_referenced_elsewhere(spec: &Spec, rel: usize) -> bool {
    spec.rels.iter().enumerate().any(|(i, r)| {
        i != rel
            && r.rules.iter().any(|rule| {
                rule.premises
                    .iter()
                    .any(|p| matches!(p, SpecPremise::Rel { rel: q, .. } if *q == rel))
            })
    })
}

fn drop_relations(spec: &Spec, out: &mut Vec<Spec>) {
    if spec.rels.len() <= 1 {
        return;
    }
    for dead in 0..spec.rels.len() {
        if rel_referenced_elsewhere(spec, dead) {
            continue;
        }
        let mut s = spec.clone();
        s.rels.remove(dead);
        s.rel_group.remove(dead);
        let remap = |q: usize| if q > dead { q - 1 } else { q };
        for rel in &mut s.rels {
            for rule in &mut rel.rules {
                for p in &mut rule.premises {
                    if let SpecPremise::Rel { rel: q, .. } = p {
                        *q = remap(*q);
                    }
                }
            }
        }
        out.push(s);
    }
}

fn drop_rules(spec: &Spec, out: &mut Vec<Spec>) {
    for (i, rel) in spec.rels.iter().enumerate() {
        if rel.rules.len() <= 1 {
            continue;
        }
        for dead in 0..rel.rules.len() {
            let mut s = spec.clone();
            s.rels[i].rules.remove(dead);
            out.push(s);
        }
    }
}

fn drop_premises(spec: &Spec, out: &mut Vec<Spec>) {
    for (i, rel) in spec.rels.iter().enumerate() {
        for (j, rule) in rel.rules.iter().enumerate() {
            for dead in 0..rule.premises.len() {
                let mut s = spec.clone();
                s.rels[i].rules[j].premises.remove(dead);
                prune_vars(&mut s, i, j);
                out.push(s);
            }
        }
    }
}

/// `true` if any relation signature, constructor argument, or term in
/// the spec references datatype `adt`.
fn adt_referenced(spec: &Spec, adt: usize) -> bool {
    let ty_hits = |tys: &[SpecType]| tys.contains(&SpecType::Adt(adt));
    spec.adts
        .iter()
        .enumerate()
        .any(|(i, a)| i != adt && a.ctors.iter().any(|c| ty_hits(&c.args)))
        || spec.rels.iter().any(|r| {
            ty_hits(&r.args)
                || r.rules.iter().any(|rule| {
                    ty_hits(&rule.vars)
                        || rule.conclusion.iter().any(|t| term_uses_adt(t, adt))
                        || rule.premises.iter().any(|p| match p {
                            SpecPremise::Rel { args, .. } => {
                                args.iter().any(|t| term_uses_adt(t, adt))
                            }
                            SpecPremise::Eq { lhs, rhs, .. } => {
                                term_uses_adt(lhs, adt) || term_uses_adt(rhs, adt)
                            }
                        })
                })
        })
}

fn term_uses_adt(t: &SpecTerm, adt: usize) -> bool {
    match t {
        SpecTerm::Var(_) | SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => false,
        SpecTerm::Succ(inner) => term_uses_adt(inner, adt),
        SpecTerm::Ctor { adt: a, args, .. } => {
            *a == adt || args.iter().any(|x| term_uses_adt(x, adt))
        }
        SpecTerm::Fun(_, args) => args.iter().any(|x| term_uses_adt(x, adt)),
    }
}

fn remap_adt_term(t: &mut SpecTerm, dead: usize) {
    match t {
        SpecTerm::Var(_) | SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => {}
        SpecTerm::Succ(inner) => remap_adt_term(inner, dead),
        SpecTerm::Ctor { adt, args, .. } => {
            if *adt > dead {
                *adt -= 1;
            }
            for a in args {
                remap_adt_term(a, dead);
            }
        }
        SpecTerm::Fun(_, args) => {
            for a in args {
                remap_adt_term(a, dead);
            }
        }
    }
}

fn drop_adts(spec: &Spec, out: &mut Vec<Spec>) {
    for dead in 0..spec.adts.len() {
        if adt_referenced(spec, dead) {
            continue;
        }
        let mut s = spec.clone();
        s.adts.remove(dead);
        let remap_ty = |t: &mut SpecType| {
            if let SpecType::Adt(a) = t {
                if *a > dead {
                    *a -= 1;
                }
            }
        };
        for a in &mut s.adts {
            for c in &mut a.ctors {
                c.args.iter_mut().for_each(remap_ty);
            }
        }
        for r in &mut s.rels {
            r.args.iter_mut().for_each(remap_ty);
            for rule in &mut r.rules {
                rule.vars.iter_mut().for_each(remap_ty);
                for t in &mut rule.conclusion {
                    remap_adt_term(t, dead);
                }
                for p in &mut rule.premises {
                    match p {
                        SpecPremise::Rel { args, .. } => {
                            args.iter_mut().for_each(|t| remap_adt_term(t, dead));
                        }
                        SpecPremise::Eq { lhs, rhs, .. } => {
                            remap_adt_term(lhs, dead);
                            remap_adt_term(rhs, dead);
                        }
                    }
                }
            }
        }
        out.push(s);
    }
}

/// `true` if any term in the spec applies constructor `(adt, ctor)`.
fn ctor_referenced(spec: &Spec, adt: usize, ctor: usize) -> bool {
    let in_term = |t: &SpecTerm| term_uses_ctor(t, adt, ctor);
    spec.rels.iter().any(|r| {
        r.rules.iter().any(|rule| {
            rule.conclusion.iter().any(in_term)
                || rule.premises.iter().any(|p| match p {
                    SpecPremise::Rel { args, .. } => args.iter().any(in_term),
                    SpecPremise::Eq { lhs, rhs, .. } => in_term(lhs) || in_term(rhs),
                })
        })
    })
}

fn term_uses_ctor(t: &SpecTerm, adt: usize, ctor: usize) -> bool {
    match t {
        SpecTerm::Var(_) | SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => false,
        SpecTerm::Succ(inner) => term_uses_ctor(inner, adt, ctor),
        SpecTerm::Ctor {
            adt: a,
            ctor: c,
            args,
        } => (*a == adt && *c == ctor) || args.iter().any(|x| term_uses_ctor(x, adt, ctor)),
        SpecTerm::Fun(_, args) => args.iter().any(|x| term_uses_ctor(x, adt, ctor)),
    }
}

fn drop_ctors(spec: &Spec, out: &mut Vec<Spec>) {
    for (ai, adt) in spec.adts.iter().enumerate() {
        // Keep the nullary first constructor: it carries the
        // inhabitation invariant.
        for dead in 1..adt.ctors.len() {
            if ctor_referenced(spec, ai, dead) {
                continue;
            }
            let mut s = spec.clone();
            s.adts[ai].ctors.remove(dead);
            let remap = |t: &mut SpecTerm| remap_ctor_term(t, ai, dead);
            for r in &mut s.rels {
                for rule in &mut r.rules {
                    rule.conclusion.iter_mut().for_each(remap);
                    for p in &mut rule.premises {
                        match p {
                            SpecPremise::Rel { args, .. } => args.iter_mut().for_each(remap),
                            SpecPremise::Eq { lhs, rhs, .. } => {
                                remap(lhs);
                                remap(rhs);
                            }
                        }
                    }
                }
            }
            out.push(s);
        }
    }
}

fn remap_ctor_term(t: &mut SpecTerm, adt: usize, dead: usize) {
    match t {
        SpecTerm::Var(_) | SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => {}
        SpecTerm::Succ(inner) => remap_ctor_term(inner, adt, dead),
        SpecTerm::Ctor { adt: a, ctor, args } => {
            if *a == adt && *ctor > dead {
                *ctor -= 1;
            }
            for x in args {
                remap_ctor_term(x, adt, dead);
            }
        }
        SpecTerm::Fun(_, args) => {
            for x in args {
                remap_ctor_term(x, adt, dead);
            }
        }
    }
}

/// One-step term simplifications, applied at every position of every
/// rule: `S t → t`, `f a b → a`, `C … tᵢ … → tᵢ` when `tᵢ` has the
/// constructor's own type, and any composite → the first constructor of
/// its type (`0`, `false`, the nullary base constructor).
fn shrink_terms(spec: &Spec, out: &mut Vec<Spec>) {
    for (i, rel) in spec.rels.iter().enumerate() {
        for (j, rule) in rel.rules.iter().enumerate() {
            let mut positions: Vec<(&SpecTerm, TermSlot)> = Vec::new();
            for (k, t) in rule.conclusion.iter().enumerate() {
                positions.push((t, TermSlot::Conclusion(k)));
            }
            for (k, p) in rule.premises.iter().enumerate() {
                match p {
                    SpecPremise::Rel { args, .. } => {
                        for (l, t) in args.iter().enumerate() {
                            positions.push((t, TermSlot::PremiseArg(k, l)));
                        }
                    }
                    SpecPremise::Eq { lhs, rhs, .. } => {
                        positions.push((lhs, TermSlot::EqLhs(k)));
                        positions.push((rhs, TermSlot::EqRhs(k)));
                    }
                }
            }
            for (t, slot) in positions {
                for small in simpler_terms(spec, t) {
                    let mut s = spec.clone();
                    slot.set(&mut s.rels[i].rules[j], small);
                    prune_vars(&mut s, i, j);
                    out.push(s);
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum TermSlot {
    Conclusion(usize),
    PremiseArg(usize, usize),
    EqLhs(usize),
    EqRhs(usize),
}

impl TermSlot {
    fn set(self, rule: &mut crate::spec::SpecRule, t: SpecTerm) {
        match self {
            TermSlot::Conclusion(k) => rule.conclusion[k] = t,
            TermSlot::PremiseArg(k, l) => {
                if let SpecPremise::Rel { args, .. } = &mut rule.premises[k] {
                    args[l] = t;
                }
            }
            TermSlot::EqLhs(k) => {
                if let SpecPremise::Eq { lhs, .. } = &mut rule.premises[k] {
                    *lhs = t;
                }
            }
            TermSlot::EqRhs(k) => {
                if let SpecPremise::Eq { rhs, .. } = &mut rule.premises[k] {
                    *rhs = t;
                }
            }
        }
    }
}

fn simpler_terms(spec: &Spec, t: &SpecTerm) -> Vec<SpecTerm> {
    match t {
        SpecTerm::Var(_) | SpecTerm::BoolLit(_) => Vec::new(),
        SpecTerm::NatLit(0) => Vec::new(),
        SpecTerm::NatLit(_) => vec![SpecTerm::NatLit(0)],
        SpecTerm::Succ(inner) => vec![(**inner).clone(), SpecTerm::NatLit(0)],
        SpecTerm::Fun(_, args) => {
            let mut v: Vec<SpecTerm> = args.to_vec();
            v.push(SpecTerm::NatLit(0));
            v
        }
        SpecTerm::Ctor { adt, ctor, args } => {
            let mut v = Vec::new();
            // Same-typed subterm promotion.
            let arg_tys = &spec.adts[*adt].ctors[*ctor].args;
            for (x, ty) in args.iter().zip(arg_tys) {
                if *ty == SpecType::Adt(*adt) {
                    v.push(x.clone());
                }
            }
            if *ctor != 0 || !args.is_empty() {
                v.push(SpecTerm::Ctor {
                    adt: *adt,
                    ctor: 0,
                    args: Vec::new(),
                });
            }
            v
        }
    }
}

/// After a premise drop or a term shrink, some `forall` variables may
/// no longer occur anywhere in rule `(rel, rule)`; drop them and
/// renumber the survivors so the emitted binder list stays tight.
fn prune_vars(spec: &mut Spec, rel: usize, rule: usize) {
    let r = &spec.rels[rel].rules[rule];
    let mut used = vec![false; r.vars.len()];
    let mut mark = |t: &SpecTerm| mark_vars(t, &mut used);
    r.conclusion.iter().for_each(&mut mark);
    for p in &r.premises {
        match p {
            SpecPremise::Rel { args, .. } => args.iter().for_each(&mut mark),
            SpecPremise::Eq { lhs, rhs, .. } => {
                mark(lhs);
                mark(rhs);
            }
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut remap = vec![usize::MAX; used.len()];
    let mut next = 0;
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = next;
            next += 1;
        }
    }
    let r = &mut spec.rels[rel].rules[rule];
    r.vars = r
        .vars
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u)
        .map(|(&ty, _)| ty)
        .collect();
    let apply = |t: &mut SpecTerm| remap_vars(t, &remap);
    r.conclusion.iter_mut().for_each(apply);
    for p in &mut r.premises {
        match p {
            SpecPremise::Rel { args, .. } => args.iter_mut().for_each(apply),
            SpecPremise::Eq { lhs, rhs, .. } => {
                remap_vars(lhs, &remap);
                remap_vars(rhs, &remap);
            }
        }
    }
}

fn mark_vars(t: &SpecTerm, used: &mut [bool]) {
    match t {
        SpecTerm::Var(i) => used[*i] = true,
        SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => {}
        SpecTerm::Succ(inner) => mark_vars(inner, used),
        SpecTerm::Ctor { args, .. } | SpecTerm::Fun(_, args) => {
            for a in args {
                mark_vars(a, used);
            }
        }
    }
}

fn remap_vars(t: &mut SpecTerm, remap: &[usize]) {
    match t {
        SpecTerm::Var(i) => *i = remap[*i],
        SpecTerm::NatLit(_) | SpecTerm::BoolLit(_) => {}
        SpecTerm::Succ(inner) => remap_vars(inner, remap),
        SpecTerm::Ctor { args, .. } | SpecTerm::Fun(_, args) => {
            for a in args {
                remap_vars(a, remap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A well-founded size measure: every shrink candidate must be
    /// strictly smaller under it, which is what makes the greedy loop
    /// terminate even without the attempt cap.
    fn measure(spec: &Spec) -> (usize, u64) {
        fn term(t: &SpecTerm, nodes: &mut usize, weight: &mut u64) {
            *nodes += 1;
            match t {
                SpecTerm::Var(_) | SpecTerm::BoolLit(_) => {}
                SpecTerm::NatLit(n) => *weight += n,
                SpecTerm::Succ(inner) => term(inner, nodes, weight),
                SpecTerm::Ctor { ctor, args, .. } => {
                    *weight += *ctor as u64;
                    args.iter().for_each(|a| term(a, nodes, weight));
                }
                SpecTerm::Fun(_, args) => args.iter().for_each(|a| term(a, nodes, weight)),
            }
        }
        let mut nodes = 0;
        let mut weight = 0;
        for adt in &spec.adts {
            nodes += 1 + adt.ctors.iter().map(|c| 1 + c.args.len()).sum::<usize>();
        }
        for rel in &spec.rels {
            nodes += 1;
            for rule in &rel.rules {
                nodes += 1 + rule.vars.len();
                rule.conclusion
                    .iter()
                    .for_each(|t| term(t, &mut nodes, &mut weight));
                for p in &rule.premises {
                    nodes += 1;
                    match p {
                        SpecPremise::Rel { args, .. } => {
                            args.iter().for_each(|t| term(t, &mut nodes, &mut weight));
                        }
                        SpecPremise::Eq { lhs, rhs, .. } => {
                            term(lhs, &mut nodes, &mut weight);
                            term(rhs, &mut nodes, &mut weight);
                        }
                    }
                }
            }
        }
        (nodes, weight)
    }

    #[test]
    fn candidates_are_well_formed_and_smaller() {
        for case in 0..50 {
            let spec = gen_spec(&mut SmallRng::seed_from_u64_stream(21, case), 6);
            let base = measure(&spec);
            for cand in candidates(&spec) {
                // Every candidate still parses (well-formedness is
                // exactly "the emitted text is a valid program").
                let mut u = indrel_rel::parse::std_universe();
                let mut env = indrel_rel::RelEnv::new();
                let text = cand.emit();
                indrel_rel::parse::parse_program(&mut u, &mut env, &text)
                    .unwrap_or_else(|e| panic!("candidate no longer parses: {e}\n{text}"));
                assert!(measure(&cand) < base, "candidate not smaller:\n{text}");
            }
        }
    }

    #[test]
    fn prune_vars_renumbers_binders() {
        use crate::spec::*;
        let mut spec = Spec {
            adts: vec![],
            rels: vec![SpecRel {
                name: "r0".into(),
                args: vec![SpecType::Nat],
                rules: vec![SpecRule {
                    name: "c0".into(),
                    vars: vec![SpecType::Nat, SpecType::Nat, SpecType::Nat],
                    premises: vec![],
                    conclusion: vec![SpecTerm::Succ(Box::new(SpecTerm::Var(2)))],
                }],
            }],
            rel_group: vec![0],
        };
        prune_vars(&mut spec, 0, 0);
        let rule = &spec.rels[0].rules[0];
        assert_eq!(rule.vars.len(), 1);
        assert_eq!(
            rule.conclusion[0],
            SpecTerm::Succ(Box::new(SpecTerm::Var(0)))
        );
    }
}
