//! Fuzzing the derivation pipeline itself.
//!
//! Everywhere else in this workspace, derived checkers and producers
//! *test other programs*. This crate turns the tooling on itself: a
//! seeded generator ([`gen::gen_spec`]) produces random well-formed
//! relation specs — non-linear conclusions, function calls, negation,
//! existentials, mutual recursion — renders them as surface syntax
//! ([`spec::Spec::emit`]), and runs every one through a bank of nine
//! differential oracles ([`oracles`]) that pit independent layers of
//! the pipeline against each other (interpreter vs lowered executor,
//! derived checker vs reference proof search, sequential vs parallel
//! runner, memoized vs plain sessions, concurrently served vs plain
//! sessions, …). Failing specs are minimized by a greedy shrinker
//! ([`shrink`]) and written out as reproducible DSL artifacts; the
//! `fuzz_pipeline` binary drives the whole loop deterministically from
//! a root seed.
//!
//! This is the paper's own methodology (§6 validates derived instances
//! against declarative semantics) applied at one level higher: instead
//! of validating the instances for a handful of case-study relations,
//! we search the space of *relation definitions* for one where any two
//! pipeline layers disagree.

#![warn(missing_docs)]

pub mod gen;
pub mod oracles;
pub mod shrink;
pub mod spec;

pub use gen::gen_spec;
pub use oracles::{
    run_dsl, run_dsl_with, Oracle, OracleOutcome, OracleParams, SpecFeatures, SpecReport,
};
pub use shrink::{shrink_spec, ShrinkResult};
pub use spec::Spec;
