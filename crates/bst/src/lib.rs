//! The binary-search-tree case study (§6.2, after "How to Specify It!").
//!
//! The QuickChick microbenchmark suite's first case study: the BST
//! invariant as an inductive relation, a handwritten checker and a
//! handwritten generator over the same term representation, the derived
//! checker and generator, an `insert` function, and the suite's
//! mutation (an insertion that can violate the search-tree invariant).
//!
//! The property under test is insertion preservation:
//! `bst lo hi t → lo < x < hi → bst lo hi (insert x t)`.
//!
//! # Example
//!
//! ```
//! use indrel_bst::Bst;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let bst = Bst::new();
//! let mut rng = SmallRng::seed_from_u64(1);
//! let t = bst.handwritten_gen(0, 16, 6, &mut rng);
//! assert!(bst.handwritten_check(0, 16, &t));
//! assert_eq!(bst.derived_check(0, 16, &t, 64), Some(true));
//! let t2 = bst.insert(8, &t);
//! assert!(bst.handwritten_check(0, 16, &t2));
//! ```

use indrel_core::{Library, LibraryBuilder, Mode, SharedLibrary};
use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_term::{CtorId, RelId, Universe, Value};
use rand::Rng as _;
use std::sync::Arc;

/// The inductive specification, in the surface syntax.
pub const BST_SOURCE: &str = r"
rel le' : nat nat :=
| le_n : forall n, le' n n
| le_S : forall n m, le' n m -> le' n (S m)
.
rel lt' : nat nat :=
| lt_ : forall n m, le' (S n) m -> lt' n m
.
data tree := Leaf | Node nat tree tree .
rel bst : nat nat tree :=
| bst_leaf : forall lo hi, bst lo hi Leaf
| bst_node : forall lo hi x l r,
    lt' lo x -> lt' x hi ->
    bst lo x l -> bst x hi r ->
    bst lo hi (Node x l r)
.
";

/// The BST case study: relations, library, handwritten baselines, and
/// mutations.
#[derive(Clone)]
pub struct Bst {
    lib: Library,
    bst: RelId,
    lt: RelId,
    leaf: CtorId,
    node: CtorId,
}

impl std::fmt::Debug for Bst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bst").finish_non_exhaustive()
    }
}

impl Default for Bst {
    fn default() -> Bst {
        Bst::new()
    }
}

impl Bst {
    /// Builds the case study: parses the specification and derives the
    /// checker and the generator/enumerator for trees
    /// (`bst lo hi ?t`), registering handwritten `le'`/`lt'` checkers
    /// as primitive instances (QuickChick ships `DecOpt` instances for
    /// the ordering relations; registering them keeps the comparison
    /// about the BST logic).
    ///
    /// # Panics
    ///
    /// Panics only if the embedded specification fails to parse or
    /// derive, which the test suite rules out.
    pub fn new() -> Bst {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, BST_SOURCE).expect("embedded source parses");
        let bst = env.rel_id("bst").expect("declared");
        let le = env.rel_id("le'").expect("declared");
        let lt = env.rel_id("lt'").expect("declared");
        let leaf = u.ctor_id("Leaf").expect("declared");
        let node = u.ctor_id("Node").expect("declared");
        let mut b = LibraryBuilder::new(u, env);
        b.register_checker(
            le,
            Arc::new(|_, _, args: &[Value]| {
                Some(args[0].as_nat().expect("nat") <= args[1].as_nat().expect("nat"))
            }),
        );
        b.register_checker(
            lt,
            Arc::new(|_, _, args: &[Value]| {
                Some(args[0].as_nat().expect("nat") < args[1].as_nat().expect("nat"))
            }),
        );
        b.derive_checker(bst).expect("bst checker derives");
        b.derive_producer(bst, Mode::producer(3, &[2]))
            .expect("bst producer derives");
        Bst {
            lib: b.build(),
            bst,
            lt,
            leaf,
            node,
        }
    }

    /// The underlying instance library.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// A `Send + Sync` handle on this case study for parallel test
    /// runs: ship one [`BstShared`] to the worker factory and
    /// [`BstShared::fork`] a private session per worker.
    ///
    /// ```
    /// use indrel_bst::Bst;
    ///
    /// let shared = Bst::new().shared();
    /// std::thread::spawn(move || {
    ///     let bst = shared.fork();
    ///     let t = bst.leaf();
    ///     assert_eq!(bst.derived_check(0, 16, &t, 64), Some(true));
    /// })
    /// .join()
    /// .unwrap();
    /// ```
    pub fn shared(&self) -> BstShared {
        BstShared {
            lib: self.lib.shared(),
            bst: self.bst,
            lt: self.lt,
            leaf: self.leaf,
            node: self.node,
        }
    }

    /// The `bst` relation id.
    pub fn relation(&self) -> RelId {
        self.bst
    }

    /// The tree-producing mode `bst lo hi ?t`.
    pub fn tree_mode(&self) -> Mode {
        Mode::producer(3, &[2])
    }

    /// The `Leaf` value.
    pub fn leaf(&self) -> Value {
        Value::ctor(self.leaf, vec![])
    }

    /// Builds a `Node`.
    pub fn tree_node(&self, x: u64, l: Value, r: Value) -> Value {
        Value::ctor(self.node, vec![Value::nat(x), l, r])
    }

    // ------------------------------------------------------------------
    // Handwritten baselines (the paper's Figure 3 blue bars)
    // ------------------------------------------------------------------

    /// The handwritten checker: a direct recursive traversal over the
    /// same term representation the derived checker sees.
    pub fn handwritten_check(&self, lo: u64, hi: u64, t: &Value) -> bool {
        let (c, args) = t.as_ctor().expect("tree value");
        if c == self.leaf {
            return true;
        }
        let x = args[0].as_nat().expect("nat key");
        lo < x
            && x < hi
            && self.handwritten_check(lo, x, &args[1])
            && self.handwritten_check(x, hi, &args[2])
    }

    /// The handwritten generator: picks a key in the open interval and
    /// recurses, exactly the classic QuickChick `genBST`.
    pub fn handwritten_gen(
        &self,
        lo: u64,
        hi: u64,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Value {
        if size == 0 || hi <= lo + 1 {
            return self.leaf();
        }
        // Weighted leaf/node choice mirroring the derived generator's
        // base-vs-recursive weighting.
        if rng.gen_range(0..=size) == 0 {
            return self.leaf();
        }
        let x = rng.gen_range(lo + 1..hi);
        let l = self.handwritten_gen(lo, x, size - 1, rng);
        let r = self.handwritten_gen(x, hi, size - 1, rng);
        self.tree_node(x, l, r)
    }

    // ------------------------------------------------------------------
    // Derived artifacts (the paper's orange bars)
    // ------------------------------------------------------------------

    /// The derived checker.
    pub fn derived_check(&self, lo: u64, hi: u64, t: &Value, fuel: u64) -> Option<bool> {
        self.lib.check(
            self.bst,
            fuel,
            fuel,
            &[Value::nat(lo), Value::nat(hi), t.clone()],
        )
    }

    /// The derived generator for `bst lo hi ?t`.
    pub fn derived_gen(
        &self,
        lo: u64,
        hi: u64,
        size: u64,
        rng: &mut dyn rand::RngCore,
    ) -> Option<Value> {
        self.lib
            .generate(
                self.bst,
                &self.tree_mode(),
                size,
                size,
                &[Value::nat(lo), Value::nat(hi)],
                rng,
            )
            .map(|mut outs| outs.pop().expect("one output"))
    }

    // ------------------------------------------------------------------
    // Insertion and the suite's mutation
    // ------------------------------------------------------------------

    /// BST insertion.
    pub fn insert(&self, x: u64, t: &Value) -> Value {
        let (c, args) = t.as_ctor().expect("tree value");
        if c == self.leaf {
            return self.tree_node(x, self.leaf(), self.leaf());
        }
        let y = args[0].as_nat().expect("nat key");
        if x < y {
            self.tree_node(y, self.insert(x, &args[1]), args[2].clone())
        } else if x > y {
            self.tree_node(y, args[1].clone(), self.insert(x, &args[2]))
        } else {
            t.clone()
        }
    }

    /// The suite's mutation: the comparison in the right branch is
    /// flipped, so an insertion can land a key on the wrong side and
    /// break the invariant.
    pub fn insert_buggy(&self, x: u64, t: &Value) -> Value {
        let (c, args) = t.as_ctor().expect("tree value");
        if c == self.leaf {
            return self.tree_node(x, self.leaf(), self.leaf());
        }
        let y = args[0].as_nat().expect("nat key");
        if x < y {
            self.tree_node(y, self.insert_buggy(x, &args[1]), args[2].clone())
        } else {
            // BUG: keys equal to y are re-inserted to the right, and the
            // recursion forgets to keep descending by comparison —
            // it swaps the subtrees on the way down.
            self.tree_node(y, args[2].clone(), self.insert_buggy(x, &args[1]))
        }
    }

    /// The size (node count) of a tree.
    pub fn tree_size(&self, t: &Value) -> u64 {
        let (c, args) = t.as_ctor().expect("tree value");
        if c == self.leaf {
            0
        } else {
            1 + self.tree_size(&args[1]) + self.tree_size(&args[2])
        }
    }

    /// The `lt'` relation id (registered handwritten instance).
    pub fn lt_relation(&self) -> RelId {
        self.lt
    }
}

/// A `Send + Sync` handle on a built [`Bst`], for fanning the case
/// study out across worker threads (see [`Bst::shared`]). Forking is
/// O(1): the universe, derived checkers, and derived producers are
/// shared behind an [`Arc`]; only per-session scratch state is fresh.
#[derive(Clone, Debug)]
pub struct BstShared {
    lib: SharedLibrary,
    bst: RelId,
    lt: RelId,
    leaf: CtorId,
    node: CtorId,
}

impl BstShared {
    /// Builds a private [`Bst`] session over the shared artifacts.
    pub fn fork(&self) -> Bst {
        Bst {
            lib: self.lib.fork(),
            bst: self.bst,
            lt: self.lt,
            leaf: self.leaf,
            node: self.node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_pbt::{Runner, TestOutcome};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn handwritten_and_derived_checkers_agree() {
        let bst = Bst::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = bst.handwritten_gen(0, 20, 5, &mut rng);
            assert!(bst.handwritten_check(0, 20, &t));
            assert_eq!(bst.derived_check(0, 20, &t, 64), Some(true));
        }
        // A non-BST.
        let bad = bst.tree_node(5, bst.tree_node(9, bst.leaf(), bst.leaf()), bst.leaf());
        assert!(!bst.handwritten_check(0, 20, &bad));
        assert_eq!(bst.derived_check(0, 20, &bad, 64), Some(false));
    }

    #[test]
    fn derived_generator_is_sound() {
        let bst = Bst::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut produced = 0;
        for _ in 0..100 {
            if let Some(t) = bst.derived_gen(0, 16, 5, &mut rng) {
                produced += 1;
                assert!(
                    bst.handwritten_check(0, 16, &t),
                    "derived gen produced a non-BST"
                );
            }
        }
        assert!(produced > 50, "generator should mostly succeed: {produced}");
    }

    #[test]
    fn derived_generator_produces_nontrivial_trees() {
        let bst = Bst::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut max_size = 0;
        for _ in 0..200 {
            if let Some(t) = bst.derived_gen(0, 32, 6, &mut rng) {
                max_size = max_size.max(bst.tree_size(&t));
            }
        }
        assert!(
            max_size >= 3,
            "expected some trees with ≥3 nodes, max was {max_size}"
        );
    }

    #[test]
    fn insert_preserves_bst() {
        let bst = Bst::new();
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            let t = bst.handwritten_gen(0, 24, 5, &mut rng);
            let x = rand::Rng::gen_range(&mut rng, 1..24);
            let t2 = bst.insert(x, &t);
            assert!(bst.handwritten_check(0, 24, &t2));
        }
    }

    #[test]
    fn mutation_is_caught_by_both_checkers() {
        let bst = Bst::new();
        let runner = Runner::new(11).with_size(6);
        let b2 = bst.clone();
        let report = runner.run(
            2000,
            move |size, rng| {
                let t = b2.handwritten_gen(0, 24, size, rng);
                let x = rand::Rng::gen_range(rng, 1..24u64);
                Some(vec![Value::nat(x), t])
            },
            |args| {
                let x = args[0].as_nat().unwrap();
                let t2 = bst.insert_buggy(x, &args[1]);
                TestOutcome::from_bool(bst.handwritten_check(0, 24, &t2))
            },
        );
        assert!(report.failed.is_some(), "the mutation should be found");
    }

    #[test]
    fn bst_validates_against_reference() {
        let bst = Bst::new();
        let v = indrel_validate::Validator::with_params(
            bst.library().clone(),
            indrel_validate::ValidationParams {
                arg_size: 3,
                max_fuel: 10,
                ref_depth: 10,
                value_bound: 4,
                gen_samples: 10,
                seed: 1,
            },
        )
        .unwrap();
        let cert = v.validate_checker(bst.relation());
        assert!(cert.is_valid(), "{cert}");
    }
}
