//! Criterion bench for the DESIGN.md ablations: backtracking locality
//! and enumerator laziness.

use criterion::{criterion_group, criterion_main, Criterion};
use indrel_bst::Bst;
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_locality(c: &mut Criterion) {
    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(31);
    let valid: Vec<Value> = (0..64)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let invalid: Vec<Value> = valid
        .iter()
        .map(|t| bst.tree_node(99, t.clone(), bst.leaf()))
        .collect();
    let mut group = c.benchmark_group("ablation/backtracking_locality");
    group.bench_function("valid_trees", |b| {
        b.iter(|| {
            for t in &valid {
                std::hint::black_box(bst.derived_check(0, 24, t, 64));
            }
        })
    });
    group.bench_function("root_invalid_trees", |b| {
        b.iter(|| {
            for t in &invalid {
                std::hint::black_box(bst.derived_check(0, 24, t, 64));
            }
        })
    });
    group.finish();
}

fn bench_laziness(c: &mut Criterion) {
    let (u, env) = indrel_corpus::corpus_env();
    let le = env.rel_id("le").expect("corpus relation");
    let mut b = indrel_core::LibraryBuilder::new(u, env);
    let mode = indrel_core::Mode::producer(2, &[0]);
    b.derive_producer(le, mode.clone())
        .expect("le producer derives");
    let lib = b.build();
    let bound = Value::nat(10);
    let mut group = c.benchmark_group("ablation/enumeration_laziness");
    group.bench_function("first_witness", |b| {
        b.iter(|| {
            let s = lib.enumerate(le, &mode, 12, 12, std::slice::from_ref(&bound));
            std::hint::black_box(s.first())
        })
    });
    group.bench_function("all_witnesses", |b| {
        b.iter(|| {
            let s = lib.enumerate(le, &mode, 12, 12, std::slice::from_ref(&bound));
            std::hint::black_box(s.values())
        })
    });
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(33);
    let trees: Vec<Value> = (0..64)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let args: Vec<Vec<Value>> = trees
        .into_iter()
        .map(|t| vec![Value::nat(0), Value::nat(24), t])
        .collect();
    let lib = bst.library().clone();
    let rel = bst.relation();
    let mut group = c.benchmark_group("ablation/lowering");
    group.bench_function("lowered_closures", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.check(rel, 64, 64, a));
            }
        })
    });
    group.bench_function("interpreted_plan", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.check_interpreted(rel, 64, 64, a));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_locality, bench_laziness, bench_lowering
}
criterion_main!(benches);
