//! Ablation: cost of the budget layer on the Figure 3 checker
//! workloads.
//!
//! Three execution paths over identical inputs:
//!
//! * `check`            — the panicking entry point. Executors call
//!   `charge_step`/`charge_backtrack` no-ops (one `RefCell` borrow +
//!   `Option` check) because no meter is armed.
//! * `try_unlimited`    — `try_check` with `Budget::unlimited()`: the
//!   fast path that validates the request but never arms a meter.
//! * `try_budgeted`     — `try_check` with a generous finite budget: a
//!   meter is armed and every charge site pays the real accounting.
//!
//! The robustness acceptance bar: `check` (the path every existing
//! caller takes) stays within ~5% of what it cost before the budget
//! layer existed; `try_budgeted` shows the full price of metering.

use criterion::{criterion_group, criterion_main, Criterion};
use indrel_bst::Bst;
use indrel_core::Budget;
use indrel_ifc::Ifc;
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bst(c: &mut Criterion) {
    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let trees: Vec<Value> = (0..128)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let lib = bst.library();
    let rel = bst.relation();
    let args: Vec<Vec<Value>> = trees
        .iter()
        .map(|t| vec![Value::nat(0), Value::nat(24), t.clone()])
        .collect();
    let budget = Budget::unlimited().with_steps(1_000_000);
    let mut group = c.benchmark_group("budget_overhead/bst");
    group.bench_function("check", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.check(rel, 64, 64, a));
            }
        })
    });
    group.bench_function("try_unlimited", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.try_check(rel, 64, 64, a, Budget::unlimited())).unwrap();
            }
        })
    });
    group.bench_function("try_budgeted", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.try_check(rel, 64, 64, a, budget)).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_ifc(c: &mut Criterion) {
    let ifc = Ifc::new();
    let mut rng = SmallRng::seed_from_u64(2);
    let pairs: Vec<(Value, Value)> = (0..128)
        .map(|_| {
            let (_, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
            (ifc.machine_value(&m1), ifc.machine_value(&m2))
        })
        .collect();
    let budget = Budget::unlimited().with_steps(1_000_000);
    let mut group = c.benchmark_group("budget_overhead/ifc");
    group.bench_function("check", |b| {
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.derived_indist(v1, v2, 64));
            }
        })
    });
    group.bench_function("try_budgeted", |b| {
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.library().try_check(
                    ifc.indist_relation(),
                    64,
                    64,
                    &[v1.clone(), v2.clone()],
                    budget,
                ))
                .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bst, bench_ifc
}
criterion_main!(benches);
