//! Ablation: cost of the ExecProbe layer on the Figure 3 checker
//! workloads.
//!
//! Two execution paths over identical inputs:
//!
//! * `check`             — no probe armed. Executors pay one `Cell`
//!   load + branch per emission site.
//! * `check_armed_stats` — a `SearchStats` probe armed: every site
//!   builds its event and the accumulator pays the real accounting.
//!
//! The acceptance bar for the observability layer: `check` here vs
//! `check` in the same bench compiled with `--features no-probe`
//! (which removes the emission sites entirely) stays within ~5%;
//! `check_armed_stats` shows the full price of telemetry.
//!
//! ```text
//! cargo bench -p indrel-bench --bench probe_overhead                        # sites present
//! cargo bench -p indrel-bench --bench probe_overhead --features no-probe    # compiled out
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use indrel_bst::Bst;
use indrel_core::{ExecProbe, SearchStats};
use indrel_ifc::Ifc;
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bst(c: &mut Criterion) {
    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let trees: Vec<Value> = (0..128)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let lib = bst.library();
    let rel = bst.relation();
    let args: Vec<Vec<Value>> = trees
        .iter()
        .map(|t| vec![Value::nat(0), Value::nat(24), t.clone()])
        .collect();
    let mut group = c.benchmark_group("probe_overhead/bst");
    group.bench_function("check", |b| {
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.check(rel, 64, 64, a));
            }
        })
    });
    group.bench_function("check_armed_stats", |b| {
        let stats = SearchStats::new();
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        b.iter(|| {
            for a in &args {
                std::hint::black_box(lib.check(rel, 64, 64, a));
            }
        })
    });
    group.finish();
}

fn bench_ifc(c: &mut Criterion) {
    let ifc = Ifc::new();
    let mut rng = SmallRng::seed_from_u64(2);
    let pairs: Vec<(Value, Value)> = (0..128)
        .map(|_| {
            let (_, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
            (ifc.machine_value(&m1), ifc.machine_value(&m2))
        })
        .collect();
    let mut group = c.benchmark_group("probe_overhead/ifc");
    group.bench_function("check", |b| {
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.derived_indist(v1, v2, 64));
            }
        })
    });
    group.bench_function("check_armed_stats", |b| {
        let stats = SearchStats::new();
        let _probe = ifc.library().arm_probe(ExecProbe::stats(&stats));
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.derived_indist(v1, v2, 64));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bst, bench_ifc
}
criterion_main!(benches);
