//! Criterion bench for Figure 3 (left): handwritten vs derived
//! checkers on BST, IFC, and STLC, over identical pre-generated inputs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use indrel_bst::Bst;
use indrel_ifc::Ifc;
use indrel_stlc::Stlc;
use indrel_term::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bst(c: &mut Criterion) {
    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let trees: Vec<Value> = (0..128)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let mut group = c.benchmark_group("fig3_checkers/bst");
    group.bench_function("handwritten", |b| {
        b.iter_batched(
            || trees.clone(),
            |trees| {
                for t in &trees {
                    std::hint::black_box(bst.handwritten_check(0, 24, t));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("derived", |b| {
        b.iter_batched(
            || trees.clone(),
            |trees| {
                for t in &trees {
                    std::hint::black_box(bst.derived_check(0, 24, t, 64));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_ifc(c: &mut Criterion) {
    let ifc = Ifc::new();
    let mut rng = SmallRng::seed_from_u64(2);
    let pairs: Vec<(Value, Value)> = (0..128)
        .map(|_| {
            let (_, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
            (ifc.machine_value(&m1), ifc.machine_value(&m2))
        })
        .collect();
    let mut group = c.benchmark_group("fig3_checkers/ifc");
    group.bench_function("handwritten", |b| {
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.handwritten_indist_value(v1, v2));
            }
        })
    });
    group.bench_function("derived", |b| {
        b.iter(|| {
            for (v1, v2) in &pairs {
                std::hint::black_box(ifc.derived_indist(v1, v2, 64));
            }
        })
    });
    group.finish();
}

fn bench_stlc(c: &mut Criterion) {
    let stlc = Stlc::new();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut inputs: Vec<(Value, Value)> = Vec::new();
    while inputs.len() < 128 {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 5, &mut rng) {
            inputs.push((e, ty));
        }
    }
    let mut group = c.benchmark_group("fig3_checkers/stlc");
    group.bench_function("handwritten", |b| {
        b.iter(|| {
            for (e, t) in &inputs {
                std::hint::black_box(stlc.handwritten_check(&[], e, t));
            }
        })
    });
    group.bench_function("derived", |b| {
        b.iter(|| {
            for (e, t) in &inputs {
                std::hint::black_box(stlc.derived_check(&[], e, t, 40));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bst, bench_ifc, bench_stlc
}
criterion_main!(benches);
