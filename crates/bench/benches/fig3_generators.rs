//! Criterion bench for Figure 3 (right): handwritten vs derived
//! generators on BST and STLC (generation + handwritten check, the
//! paper's full test loop).

use criterion::{criterion_group, criterion_main, Criterion};
use indrel_bst::Bst;
use indrel_stlc::Stlc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_bst(c: &mut Criterion) {
    let bst = Bst::new();
    let mut group = c.benchmark_group("fig3_generators/bst");
    group.bench_function("handwritten", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| {
            let t = bst.handwritten_gen(0, 24, 6, &mut rng);
            std::hint::black_box(bst.handwritten_check(0, 24, &t));
        })
    });
    group.bench_function("derived", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| {
            if let Some(t) = bst.derived_gen(0, 24, 6, &mut rng) {
                std::hint::black_box(bst.handwritten_check(0, 24, &t));
            }
        })
    });
    group.finish();
}

fn bench_stlc(c: &mut Criterion) {
    let stlc = Stlc::new();
    let mut group = c.benchmark_group("fig3_generators/stlc");
    group.bench_function("handwritten", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| {
            let ty = stlc.random_ty(2, &mut rng);
            if let Some(e) = stlc.handwritten_gen(&[], &ty, 5, &mut rng) {
                std::hint::black_box(stlc.handwritten_check(&[], &e, &ty));
            }
        })
    });
    group.bench_function("derived", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| {
            let ty = stlc.random_ty(2, &mut rng);
            if let Some(e) = stlc.derived_gen(&[], &ty, 5, &mut rng) {
                std::hint::black_box(stlc.handwritten_check(&[], &e, &ty));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bst, bench_stlc
}
criterion_main!(benches);
