//! Criterion bench for §6.3: naive proof construction + kernel check
//! vs one reflective checker run, on `Sorted (repeat 1 n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indrel_reflect::Reflection;

fn bench_reflection(c: &mut Criterion) {
    let r = Reflection::new();
    let mut group = c.benchmark_group("reflection");
    group.sample_size(10);
    for n in [500u64, 2000] {
        let l = r.repeat_list(1, n);
        group.bench_with_input(BenchmarkId::new("naive_construct", n), &l, |b, l| {
            b.iter(|| std::hint::black_box(r.naive_prove(l).expect("sorted")))
        });
        let proof = r.naive_prove(&l).expect("sorted");
        group.bench_with_input(BenchmarkId::new("kernel_check", n), &proof, |b, p| {
            b.iter(|| r.kernel_check(p).expect("valid"))
        });
        group.bench_with_input(BenchmarkId::new("reflective", n), &l, |b, l| {
            b.iter(|| std::hint::black_box(r.reflective_check(l)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reflection);
criterion_main!(benches);
