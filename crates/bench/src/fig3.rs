//! Figure 3: throughput of the QuickChick case studies with
//! handwritten vs derived checkers (left) and generators (right).
//!
//! As in the paper, the checker comparison fixes the handwritten
//! generator and swaps the checker; the generator comparison fixes the
//! handwritten checker and swaps the generator. Throughput is tests
//! per second over a fixed wall-clock budget.

use indrel_bst::Bst;
use indrel_ifc::Ifc;
use indrel_pbt::{Runner, TestOutcome};
use indrel_stlc::Stlc;
use indrel_term::Value;
use std::fmt;
use std::time::Duration;

/// One bar pair of Figure 3.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Handwritten tests/second.
    pub handwritten_tps: f64,
    /// Derived tests/second.
    pub derived_tps: f64,
}

impl CaseResult {
    /// The percentage annotation of Figure 3.
    pub fn delta_pct(&self) -> f64 {
        crate::delta_pct(self.handwritten_tps, self.derived_tps)
    }
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} handwritten {:>12.0} t/s   derived {:>12.0} t/s   Δ {:>7.2}%",
            self.name,
            self.handwritten_tps,
            self.derived_tps,
            self.delta_pct()
        )
    }
}

const BST_FUEL: u64 = 64;
const STLC_FUEL: u64 = 40;
const IFC_FUEL: u64 = 64;

/// Measures the checker side (Figure 3, left): BST, IFC, STLC.
pub fn checkers(budget: Duration) -> Vec<CaseResult> {
    let mut out = Vec::new();

    // ---- BST ----
    let bst = Bst::new();
    let gen_bst =
        |size: u64, rng: &mut dyn rand::RngCore| Some(vec![bst.handwritten_gen(0, 24, size, rng)]);
    let hand = Runner::new(1)
        .with_size(6)
        .throughput(budget, 64, gen_bst, |args| {
            TestOutcome::from_bool(bst.handwritten_check(0, 24, &args[0]))
        });
    let derv = Runner::new(1)
        .with_size(6)
        .throughput(budget, 64, gen_bst, |args| {
            TestOutcome::from_check(bst.derived_check(0, 24, &args[0], BST_FUEL))
        });
    out.push(CaseResult {
        name: "BST",
        handwritten_tps: hand.tests_per_second(),
        derived_tps: derv.tests_per_second(),
    });

    // ---- IFC ----
    let ifc = Ifc::new();
    let ifc2 = ifc.clone();
    let gen_pair = move |size: u64, rng: &mut dyn rand::RngCore| {
        let (_, m1, m2) = ifc2.gen_indist_pair(size, rng);
        Some(vec![ifc2.machine_value(&m1), ifc2.machine_value(&m2)])
    };
    let hand = Runner::new(2)
        .with_size(6)
        .throughput(budget, 64, gen_pair.clone(), |args| {
            TestOutcome::from_bool(ifc.handwritten_indist_value(&args[0], &args[1]))
        });
    let derv = Runner::new(2)
        .with_size(6)
        .throughput(budget, 64, gen_pair, |args| {
            TestOutcome::from_check(ifc.derived_indist(&args[0], &args[1], IFC_FUEL))
        });
    out.push(CaseResult {
        name: "IFC",
        handwritten_tps: hand.tests_per_second(),
        derived_tps: derv.tests_per_second(),
    });

    // ---- STLC ----
    let stlc = Stlc::new();
    let s2 = stlc.clone();
    let gen_term = move |size: u64, rng: &mut dyn rand::RngCore| {
        let ty = s2.random_ty(2, rng);
        let e = s2.handwritten_gen(&[], &ty, size, rng)?;
        Some(vec![e, ty])
    };
    let hand = Runner::new(3)
        .with_size(5)
        .throughput(budget, 64, gen_term.clone(), |args| {
            TestOutcome::from_bool(stlc.handwritten_check(&[], &args[0], &args[1]))
        });
    let derv = Runner::new(3)
        .with_size(5)
        .throughput(budget, 64, gen_term, |args| {
            TestOutcome::from_check(stlc.derived_check(&[], &args[0], &args[1], STLC_FUEL))
        });
    out.push(CaseResult {
        name: "STLC",
        handwritten_tps: hand.tests_per_second(),
        derived_tps: derv.tests_per_second(),
    });

    out
}

/// Measures the generator side (Figure 3, right): BST, STLC.
pub fn generators(budget: Duration) -> Vec<CaseResult> {
    let mut out = Vec::new();

    // ---- BST ----
    let bst = Bst::new();
    let b_hand = bst.clone();
    let b_derv = bst.clone();
    let check = |bst: &Bst, t: &Value| TestOutcome::from_bool(bst.handwritten_check(0, 24, t));
    let hand = Runner::new(4).with_size(6).throughput(
        budget,
        64,
        move |size, rng| Some(vec![b_hand.handwritten_gen(0, 24, size, rng)]),
        |args| check(&bst, &args[0]),
    );
    let bst2 = Bst::new();
    let derv = Runner::new(4).with_size(6).throughput(
        budget,
        64,
        move |size, rng| b_derv.derived_gen(0, 24, size, rng).map(|t| vec![t]),
        |args| check(&bst2, &args[0]),
    );
    out.push(CaseResult {
        name: "BST",
        handwritten_tps: hand.tests_per_second(),
        derived_tps: derv.tests_per_second(),
    });

    // ---- STLC ----
    let stlc = Stlc::new();
    let s_hand = stlc.clone();
    let s_derv = stlc.clone();
    let hand = Runner::new(5).with_size(5).throughput(
        budget,
        64,
        move |size, rng| {
            let ty = s_hand.random_ty(2, rng);
            let e = s_hand.handwritten_gen(&[], &ty, size, rng)?;
            Some(vec![e, ty])
        },
        |args| TestOutcome::from_bool(stlc.handwritten_check(&[], &args[0], &args[1])),
    );
    let stlc2 = Stlc::new();
    let derv = Runner::new(5).with_size(5).throughput(
        budget,
        64,
        move |size, rng| {
            let ty = s_derv.random_ty(2, rng);
            let e = s_derv.derived_gen(&[], &ty, size, rng)?;
            Some(vec![e, ty])
        },
        |args| TestOutcome::from_bool(stlc2.handwritten_check(&[], &args[0], &args[1])),
    );
    out.push(CaseResult {
        name: "STLC",
        handwritten_tps: hand.tests_per_second(),
        derived_tps: derv.tests_per_second(),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_throughputs_are_positive() {
        for r in checkers(Duration::from_millis(30)) {
            assert!(r.handwritten_tps > 0.0, "{r}");
            assert!(r.derived_tps > 0.0, "{r}");
        }
    }

    #[test]
    fn generator_throughputs_are_positive() {
        for r in generators(Duration::from_millis(30)) {
            assert!(r.handwritten_tps > 0.0, "{r}");
            assert!(r.derived_tps > 0.0, "{r}");
        }
    }
}
