//! Figure 3: throughput of the QuickChick case studies with
//! handwritten vs derived checkers (left) and generators (right).
//!
//! As in the paper, the checker comparison fixes the handwritten
//! generator and swaps the checker; the generator comparison fixes the
//! handwritten checker and swaps the generator. Throughput is tests
//! per second over a fixed wall-clock budget.
//!
//! Beyond the paper's numbers, each case can run an extra fixed-count
//! *telemetry pass* with a [`SearchStats`] probe armed on the derived
//! side ([`checkers_telemetry`] / [`generators_telemetry`]), and the
//! whole figure exports as one machine-readable JSON document
//! ([`fig3_json`], the `fig3 --json` flag). Throughput numbers always
//! come from unarmed runs — the probe pass is separate, so the
//! telemetry never taxes the measurement it annotates.

use indrel_bst::Bst;
use indrel_core::{ExecProbe, Library, SearchStats};
use indrel_ifc::Ifc;
use indrel_pbt::{Runner, TestOutcome};
use indrel_producers::json_escape;
use indrel_stlc::Stlc;
use indrel_term::Value;
use std::fmt;
use std::time::{Duration, Instant};

/// One bar pair of Figure 3.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Handwritten tests/second.
    pub handwritten_tps: f64,
    /// Derived tests/second.
    pub derived_tps: f64,
}

impl CaseResult {
    /// The percentage annotation of Figure 3.
    pub fn delta_pct(&self) -> f64 {
        crate::delta_pct(self.handwritten_tps, self.derived_tps)
    }
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} handwritten {:>12.0} t/s   derived {:>12.0} t/s   Δ {:>7.2}%",
            self.name,
            self.handwritten_tps,
            self.derived_tps,
            self.delta_pct()
        )
    }
}

/// The fixed-count probe pass run after the throughput measurement:
/// the derived side repeated with a [`SearchStats`] armed.
#[derive(Clone, Debug)]
pub struct StatsPass {
    /// Attempted tests in the pass (verdicts + discards + crashes).
    pub tests: u64,
    /// Wall-clock time of the armed pass.
    pub wall: Duration,
    /// Runner meter steps charged during the pass.
    pub steps: u64,
    /// Runner meter backtracks charged during the pass.
    pub backtracks: u64,
    /// The accumulated search statistics.
    pub stats: SearchStats,
}

/// A [`CaseResult`] plus its optional telemetry pass.
#[derive(Clone, Debug)]
pub struct CaseTelemetry {
    /// The throughput comparison (always from unarmed runs).
    pub result: CaseResult,
    /// Present when the telemetry pass was requested (`stats_tests > 0`).
    pub stats_pass: Option<StatsPass>,
}

type BoxedGen<'a> = Box<dyn FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>> + 'a>;
type BoxedProp<'a> = Box<dyn FnMut(&[Value]) -> TestOutcome + 'a>;

/// One side of a comparison: a generator plus a property.
struct Side<'a> {
    gen: BoxedGen<'a>,
    prop: BoxedProp<'a>,
}

/// Measures one bar pair: two unarmed throughput runs, then (when
/// `stats_tests > 0`) a fixed-count re-run of the derived side with a
/// [`SearchStats`] probe armed on `lib`.
#[allow(clippy::too_many_arguments)]
fn measure_case(
    budget: Duration,
    stats_tests: u64,
    name: &'static str,
    seed: u64,
    size: u64,
    lib: &Library,
    mut hand: Side<'_>,
    mut derv: Side<'_>,
) -> CaseTelemetry {
    let runner = Runner::new(seed).with_size(size);
    let h = runner.throughput(budget, 64, &mut hand.gen, &mut hand.prop);
    let d = runner.throughput(budget, 64, &mut derv.gen, &mut derv.prop);
    let result = CaseResult {
        name,
        handwritten_tps: h.tests_per_second(),
        derived_tps: d.tests_per_second(),
    };
    let stats_pass = (stats_tests > 0).then(|| {
        let stats = SearchStats::new();
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        let t0 = Instant::now();
        let report = runner.run(stats_tests as usize, &mut derv.gen, &mut derv.prop);
        let wall = t0.elapsed();
        StatsPass {
            tests: report.attempts() as u64,
            wall,
            steps: report.spent.steps,
            backtracks: report.spent.backtracks,
            stats,
        }
    });
    CaseTelemetry { result, stats_pass }
}

const BST_FUEL: u64 = 64;
const STLC_FUEL: u64 = 40;
const IFC_FUEL: u64 = 64;

/// Measures the checker side (Figure 3, left): BST, IFC, STLC.
pub fn checkers(budget: Duration) -> Vec<CaseResult> {
    checkers_telemetry(budget, 0)
        .into_iter()
        .map(|t| t.result)
        .collect()
}

/// Measures the generator side (Figure 3, right): BST, STLC.
pub fn generators(budget: Duration) -> Vec<CaseResult> {
    generators_telemetry(budget, 0)
        .into_iter()
        .map(|t| t.result)
        .collect()
}

/// [`checkers`] plus a `stats_tests`-long probe pass per case.
pub fn checkers_telemetry(budget: Duration, stats_tests: u64) -> Vec<CaseTelemetry> {
    let mut out = Vec::new();

    // ---- BST ----
    let bst = Bst::new();
    let gen_bst = |bst: &Bst| {
        let b = bst.clone();
        move |size: u64, rng: &mut dyn rand::RngCore| {
            Some(vec![b.handwritten_gen(0, 24, size, rng)])
        }
    };
    out.push(measure_case(
        budget,
        stats_tests,
        "BST",
        1,
        6,
        bst.library(),
        Side {
            gen: Box::new(gen_bst(&bst)),
            prop: Box::new(|args| TestOutcome::from_bool(bst.handwritten_check(0, 24, &args[0]))),
        },
        Side {
            gen: Box::new(gen_bst(&bst)),
            prop: Box::new(|args| {
                TestOutcome::from_check(bst.derived_check(0, 24, &args[0], BST_FUEL))
            }),
        },
    ));

    // ---- IFC ----
    let ifc = Ifc::new();
    let gen_pair = |ifc: &Ifc| {
        let i = ifc.clone();
        move |size: u64, rng: &mut dyn rand::RngCore| {
            let (_, m1, m2) = i.gen_indist_pair(size, rng);
            Some(vec![i.machine_value(&m1), i.machine_value(&m2)])
        }
    };
    out.push(measure_case(
        budget,
        stats_tests,
        "IFC",
        2,
        6,
        ifc.library(),
        Side {
            gen: Box::new(gen_pair(&ifc)),
            prop: Box::new(|args| {
                TestOutcome::from_bool(ifc.handwritten_indist_value(&args[0], &args[1]))
            }),
        },
        Side {
            gen: Box::new(gen_pair(&ifc)),
            prop: Box::new(|args| {
                TestOutcome::from_check(ifc.derived_indist(&args[0], &args[1], IFC_FUEL))
            }),
        },
    ));

    // ---- STLC ----
    let stlc = Stlc::new();
    let gen_term = |stlc: &Stlc| {
        let s = stlc.clone();
        move |size: u64, rng: &mut dyn rand::RngCore| {
            let ty = s.random_ty(2, rng);
            let e = s.handwritten_gen(&[], &ty, size, rng)?;
            Some(vec![e, ty])
        }
    };
    out.push(measure_case(
        budget,
        stats_tests,
        "STLC",
        3,
        5,
        stlc.library(),
        Side {
            gen: Box::new(gen_term(&stlc)),
            prop: Box::new(|args| {
                TestOutcome::from_bool(stlc.handwritten_check(&[], &args[0], &args[1]))
            }),
        },
        Side {
            gen: Box::new(gen_term(&stlc)),
            prop: Box::new(|args| {
                TestOutcome::from_check(stlc.derived_check(&[], &args[0], &args[1], STLC_FUEL))
            }),
        },
    ));

    out
}

/// [`generators`] plus a `stats_tests`-long probe pass per case.
pub fn generators_telemetry(budget: Duration, stats_tests: u64) -> Vec<CaseTelemetry> {
    let mut out = Vec::new();

    // ---- BST ----
    let bst = Bst::new();
    let b_hand = bst.clone();
    let b_derv = bst.clone();
    let bst_check = |bst: &Bst| {
        let b = bst.clone();
        move |args: &[Value]| TestOutcome::from_bool(b.handwritten_check(0, 24, &args[0]))
    };
    out.push(measure_case(
        budget,
        stats_tests,
        "BST",
        4,
        6,
        bst.library(),
        Side {
            gen: Box::new(move |size, rng| Some(vec![b_hand.handwritten_gen(0, 24, size, rng)])),
            prop: Box::new(bst_check(&bst)),
        },
        Side {
            gen: Box::new(move |size, rng| b_derv.derived_gen(0, 24, size, rng).map(|t| vec![t])),
            prop: Box::new(bst_check(&bst)),
        },
    ));

    // ---- STLC ----
    let stlc = Stlc::new();
    let s_hand = stlc.clone();
    let s_derv = stlc.clone();
    let stlc_check = |stlc: &Stlc| {
        let s = stlc.clone();
        move |args: &[Value]| TestOutcome::from_bool(s.handwritten_check(&[], &args[0], &args[1]))
    };
    out.push(measure_case(
        budget,
        stats_tests,
        "STLC",
        5,
        5,
        stlc.library(),
        Side {
            gen: Box::new(move |size, rng| {
                let ty = s_hand.random_ty(2, rng);
                let e = s_hand.handwritten_gen(&[], &ty, size, rng)?;
                Some(vec![e, ty])
            }),
            prop: Box::new(stlc_check(&stlc)),
        },
        Side {
            gen: Box::new(move |size, rng| {
                let ty = s_derv.random_ty(2, rng);
                let e = s_derv.derived_gen(&[], &ty, size, rng)?;
                Some(vec![e, ty])
            }),
            prop: Box::new(stlc_check(&stlc)),
        },
    ));

    out
}

fn case_json(t: &CaseTelemetry) -> String {
    let mut s = format!(
        "{{\"relation\":\"{}\",\"handwritten_tps\":{:.3},\"derived_tps\":{:.3},\"delta_pct\":{:.3}",
        json_escape(t.result.name),
        t.result.handwritten_tps,
        t.result.derived_tps,
        t.result.delta_pct()
    );
    if let Some(p) = &t.stats_pass {
        s.push_str(&format!(
            ",\"stats_pass\":{{\"tests\":{},\"wall_ms\":{:.3},\"steps\":{},\"backtracks\":{},\
             \"attempts\":{},\"successes\":{},\"unify_fails\":{},\"search\":{}}}",
            p.tests,
            p.wall.as_secs_f64() * 1e3,
            p.steps,
            p.backtracks,
            p.stats.total_attempts(),
            p.stats.total_successes(),
            p.stats.total_unify_fails(),
            p.stats.to_json()
        ));
    }
    s.push('}');
    s
}

/// The whole figure as one JSON document (`indrel.bench.fig3/1`):
/// per-case throughput, delta, and — when `stats_tests > 0` — the
/// telemetry pass with runner accounting and full [`SearchStats`].
pub fn fig3_json(budget: Duration, stats_tests: u64) -> String {
    let checkers = checkers_telemetry(budget, stats_tests);
    let generators = generators_telemetry(budget, stats_tests);
    let join = |cases: &[CaseTelemetry]| cases.iter().map(case_json).collect::<Vec<_>>().join(",");
    format!(
        "{{\"schema\":\"indrel.bench.fig3/1\",\"budget_ms\":{},\"stats_tests\":{},\
         \"checkers\":[{}],\"generators\":[{}]}}",
        budget.as_millis(),
        stats_tests,
        join(&checkers),
        join(&generators)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_throughputs_are_positive() {
        for r in checkers(Duration::from_millis(30)) {
            assert!(r.handwritten_tps > 0.0, "{r}");
            assert!(r.derived_tps > 0.0, "{r}");
        }
    }

    #[test]
    fn generator_throughputs_are_positive() {
        for r in generators(Duration::from_millis(30)) {
            assert!(r.handwritten_tps > 0.0, "{r}");
            assert!(r.derived_tps > 0.0, "{r}");
        }
    }

    #[test]
    fn telemetry_pass_populates_search_stats() {
        for t in checkers_telemetry(Duration::from_millis(10), 50) {
            let p = t.stats_pass.expect("stats pass requested");
            assert!(p.tests > 0, "{}", t.result.name);
            assert!(
                p.stats.total_attempts() > 0,
                "{}: derived checker should attempt rules",
                t.result.name
            );
        }
    }

    #[test]
    fn fig3_json_has_schema_and_cases() {
        let j = fig3_json(Duration::from_millis(10), 20);
        assert!(j.starts_with("{\"schema\":\"indrel.bench.fig3/1\""), "{j}");
        for name in [
            "\"relation\":\"BST\"",
            "\"relation\":\"IFC\"",
            "\"relation\":\"STLC\"",
        ] {
            assert!(j.contains(name), "{j}");
        }
        assert!(j.contains("\"stats_pass\""), "{j}");
        assert!(j.contains("\"search\""), "{j}");
    }
}
