//! Parallel-runner scaling: the BST derived-checker workload run
//! through [`Runner::run_par`] at increasing worker counts.
//!
//! The workload is the Figure 3 BST checker case (handwritten
//! generator, derived checker, seed 1, size 6), run for a fixed number
//! of test slots per worker count so runs are comparable by wall-clock
//! alone. Alongside the timings, the harness checks the engine's core
//! claim — that the merged [`RunReport`] is **byte-identical** at every
//! worker count — and reports the host's core count, since speedup is
//! bounded by it (a single-core host shows ≈1× at every worker count;
//! see `EXPERIMENTS.md`).

use indrel_bst::{Bst, BstShared};
use indrel_pbt::{Parallelism, RunReport, Runner, TestOutcome};
use indrel_term::Value;
use std::fmt;
use std::time::{Duration, Instant};

const BST_FUEL: u64 = 64;
const SEED: u64 = 1;
const SIZE: u64 = 6;

/// One worker-count measurement.
#[derive(Clone, Debug)]
pub struct ParCase {
    /// Worker threads (0 = [`Parallelism::Off`], the sequential
    /// baseline running the same sharded engine inline).
    pub workers: usize,
    /// Test slots executed (the report's attempts, including
    /// discards).
    pub tests: usize,
    /// Wall-clock time for the whole run, merge included.
    pub wall: Duration,
}

impl ParCase {
    /// Test cases per second of wall-clock time.
    pub fn cases_per_second(&self) -> f64 {
        self.tests as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl fmt::Display for ParCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = if self.workers == 0 {
            "off".to_string()
        } else {
            format!("{:>3}", self.workers)
        };
        write!(
            f,
            "workers {label}   {:>9.0} cases/s   ({} cases in {:.1} ms)",
            self.cases_per_second(),
            self.tests,
            self.wall.as_secs_f64() * 1e3
        )
    }
}

/// The whole scaling measurement: per-worker-count timings plus the
/// cross-count determinism check.
#[derive(Clone, Debug)]
pub struct ParScaling {
    /// One entry per measured worker count, in input order.
    pub cases: Vec<ParCase>,
    /// Whether every run's report rendered byte-identically — the
    /// parallel engine's determinism claim, checked on the real
    /// workload.
    pub reports_identical: bool,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cores: usize,
}

fn run_bst(shared: &BstShared, parallelism: Parallelism, tests: usize) -> (RunReport, Duration) {
    let runner = Runner::new(SEED)
        .with_size(SIZE)
        .with_parallelism(parallelism);
    let t0 = Instant::now();
    let report = runner.run_par(tests, || {
        let gen_bst = shared.fork();
        let check_bst = shared.fork();
        (
            move |size, rng: &mut dyn rand::RngCore| {
                Some(vec![gen_bst.handwritten_gen(0, 24, size, rng)])
            },
            move |args: &[Value]| {
                TestOutcome::from_check(check_bst.derived_check(0, 24, &args[0], BST_FUEL))
            },
        )
    });
    (report, t0.elapsed())
}

/// Runs the BST checker workload for `tests` slots at each worker
/// count in `workers` (0 = `Off`), verifying report determinism along
/// the way.
pub fn bst_scaling(tests: usize, workers: &[usize]) -> ParScaling {
    let shared = Bst::new().shared();
    let mut cases = Vec::new();
    let mut rendered: Option<String> = None;
    let mut reports_identical = true;
    for &w in workers {
        let parallelism = if w == 0 {
            Parallelism::Off
        } else {
            Parallelism::Fixed(w)
        };
        let (report, wall) = run_bst(&shared, parallelism, tests);
        let this = report.to_string();
        match &rendered {
            None => rendered = Some(this),
            Some(first) => reports_identical &= *first == this,
        }
        cases.push(ParCase {
            workers: w,
            tests: report.attempts(),
            wall,
        });
    }
    ParScaling {
        cases,
        reports_identical,
        host_cores: std::thread::available_parallelism().map_or(1, |k| k.get()),
    }
}

/// The scaling measurement as one JSON document
/// (`indrel.bench.par/1`): per-worker-count cases/sec, speedup over
/// the `Off` baseline, the determinism verdict, and the host core
/// count needed to interpret the speedups.
pub fn par_json(tests: usize, workers: &[usize]) -> String {
    let s = bst_scaling(tests, workers);
    let base = s.cases.first().map_or(0.0, ParCase::cases_per_second);
    let cases = s
        .cases
        .iter()
        .map(|c| {
            let cps = c.cases_per_second();
            format!(
                "{{\"workers\":{},\"tests\":{},\"wall_ms\":{:.3},\"cases_per_sec\":{:.3},\
                 \"speedup_vs_off\":{:.3}}}",
                c.workers,
                c.tests,
                c.wall.as_secs_f64() * 1e3,
                cps,
                if base > 0.0 { cps / base } else { 0.0 }
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"schema\":\"indrel.bench.par/1\",\"workload\":\"bst-derived-checker\",\
         \"seed\":{SEED},\"size\":{SIZE},\"fuel\":{BST_FUEL},\"requested_tests\":{tests},\
         \"host_cores\":{},\"reports_identical\":{},\"cases\":[{cases}]}}",
        s.host_cores, s.reports_identical
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_measures_and_reports_are_identical() {
        let s = bst_scaling(300, &[0, 2]);
        assert_eq!(s.cases.len(), 2);
        assert!(s.reports_identical, "parallel BST reports diverged");
        for c in &s.cases {
            assert!(c.cases_per_second() > 0.0, "{c}");
            assert!(c.tests >= 300, "discards count as cases: {c}");
        }
    }

    #[test]
    fn par_json_has_schema_and_speedups() {
        let j = par_json(200, &[0, 2]);
        assert!(j.starts_with("{\"schema\":\"indrel.bench.par/1\""), "{j}");
        assert!(j.contains("\"reports_identical\":true"), "{j}");
        assert!(j.contains("\"speedup_vs_off\""), "{j}");
        assert!(j.contains("\"host_cores\""), "{j}");
    }
}
