//! Query-planner benchmark: static premise order vs profile-guided
//! replanning ([`Library::replan_from`]).
//!
//! Two sides, matching the two claims the planner makes:
//!
//! * **Adversarial corpus** — a sparse-premise relation whose source
//!   order is pessimal: the first premise is expensive and never
//!   fails, the second is cheap and almost always fails. The static
//!   scheduler (cost ties break by source order) pays the expensive
//!   premise on every tuple; one profiled replan hoists the selective
//!   premise and the search short-circuits. The acceptance bar is a
//!   **≥ 1.5×** throughput speedup (the structural gap is an order of
//!   magnitude, so the bar is noise-proof).
//! * **Figure 3 non-regression** — the BST/IFC/STLC checker workloads,
//!   replanned from a profile of themselves. Their premise orders are
//!   already good, so the replan must be (close to) a no-op: the bar
//!   is **≤ 5%** throughput regression per case.
//!
//! The run also re-replans from the same snapshot and compares the
//! rendered plans byte-for-byte (`deterministic`), pinning the
//! replans-are-deterministic contract outside the test suite.
//!
//! Exported as the `indrel.bench.plan/1` JSON schema via [`plan_json`]
//! (the `plan --json` flag, committed as `BENCH_plan.json`).

use indrel_bst::Bst;
use indrel_core::{ExecProbe, Library, LibraryBuilder, SearchStats};
use indrel_ifc::Ifc;
use indrel_producers::json_escape;
use indrel_rel::{parse::parse_program, RelEnv};
use indrel_stlc::Stlc;
use indrel_term::{RelId, Universe, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};

/// The adversarial two-premise spec. `good n m` puts the expensive,
/// never-failing premise (`le' 0 n`, cost O(n)) *before* the cheap,
/// almost-always-failing one (`le' (S n) m`, which fails after O(m)
/// steps whenever `n ≥ m`): both are plain checker calls, so their
/// static costs tie and the unprofiled scheduler keeps source order.
const ADVERSARIAL_SPEC: &str = r"
    rel le' : nat nat :=
    | le_n : forall n, le' n n
    | le_S : forall n m, le' n m -> le' n (S m)
    .
    rel good : nat nat :=
    | g : forall n m, le' 0 n -> le' (S n) m -> good n m
    .
";

const ADVERSARIAL_FUEL: u64 = 128;

/// The adversarial side of the report.
#[derive(Clone, Debug)]
pub struct AdversarialResult {
    /// Static-order (seed-cost) throughput, tuples/second.
    pub static_tps: f64,
    /// Profile-replanned throughput over the same tuples.
    pub replanned_tps: f64,
    /// Relations the replan actually rescheduled.
    pub replanned_rels: usize,
    /// `true` when a second replan from the same snapshot reproduced
    /// byte-identical plans.
    pub deterministic: bool,
}

impl AdversarialResult {
    /// Replanned over static throughput — the ≥ 1.5× acceptance bar.
    pub fn speedup(&self) -> f64 {
        self.replanned_tps / self.static_tps
    }
}

impl fmt::Display for AdversarialResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adversarial  static {:>11.0} t/s   replanned {:>11.0} t/s   \
             speedup {:>5.2}x   ({} rel(s) rescheduled, deterministic: {})",
            self.static_tps,
            self.replanned_tps,
            self.speedup(),
            self.replanned_rels,
            self.deterministic
        )
    }
}

/// One Figure 3 non-regression case.
#[derive(Clone, Debug)]
pub struct RegressionResult {
    /// Case name.
    pub name: &'static str,
    /// Baseline (static-schedule) throughput, tuples/second.
    pub baseline_tps: f64,
    /// Throughput after replanning from a profile of the same workload.
    pub replanned_tps: f64,
    /// Relations the replan rescheduled (usually 0 — the Figure 3
    /// orders are already good).
    pub replanned_rels: usize,
}

impl RegressionResult {
    /// Replanned over baseline — the ≥ 0.95 acceptance line.
    pub fn ratio(&self) -> f64 {
        self.replanned_tps / self.baseline_tps
    }
}

impl fmt::Display for RegressionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} baseline {:>11.0} t/s   replanned {:>11.0} t/s   \
             ratio {:>5.2}   ({} rel(s) rescheduled)",
            self.name,
            self.baseline_tps,
            self.replanned_tps,
            self.ratio(),
            self.replanned_rels
        )
    }
}

/// Checks every tuple in a round-robin loop until the budget elapses;
/// returns tuples/second.
fn tuples_per_second(
    lib: &Library,
    rel: RelId,
    fuel: u64,
    tuples: &[Vec<Value>],
    budget: Duration,
) -> f64 {
    let start = Instant::now();
    let mut n = 0u64;
    loop {
        for t in tuples {
            let _ = lib.check(rel, fuel, fuel, t);
        }
        n += tuples.len() as u64;
        if start.elapsed() >= budget {
            break;
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// One profiling pass: checks every tuple once under an armed stats
/// probe and returns the snapshot.
fn profile_pass(lib: &Library, rel: RelId, fuel: u64, tuples: &[Vec<Value>]) -> SearchStats {
    let stats = SearchStats::new();
    let _probe = lib.arm_probe(ExecProbe::stats(&stats));
    for t in tuples {
        let _ = lib.check(rel, fuel, fuel, t);
    }
    stats
}

/// `true` when two libraries render byte-identical explanations for
/// every relation — the byte-determinism check for sibling replans.
fn plans_identical(a: &Library, b: &Library) -> bool {
    a.env()
        .iter()
        .all(|(rel, _)| a.explain(rel) == b.explain(rel))
}

/// Runs the adversarial corpus: profile under the static schedule,
/// replan, and measure both schedules over the same tuples.
pub fn adversarial(budget: Duration) -> AdversarialResult {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(&mut u, &mut env, ADVERSARIAL_SPEC).expect("adversarial spec parses");
    let rel = env.rel_id("good").expect("relation exists");
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(rel).expect("derives");
    let lib = b.build();

    // All-failing tuples with n large and m small: the worst case for
    // the source order, the best case for the profiled one.
    let tuples: Vec<Vec<Value>> = (0..32)
        .map(|i| vec![Value::nat(24 + (i % 8) * 4), Value::nat(i % 3)])
        .collect();

    let stats = profile_pass(&lib, rel, ADVERSARIAL_FUEL, &tuples);
    let (replanned, report) = lib.replan_from_report(&stats);
    let (again, _) = lib.replan_from_report(&stats);

    let static_tps = tuples_per_second(&lib, rel, ADVERSARIAL_FUEL, &tuples, budget);
    let replanned_tps = tuples_per_second(&replanned, rel, ADVERSARIAL_FUEL, &tuples, budget);
    AdversarialResult {
        static_tps,
        replanned_tps,
        replanned_rels: report.replanned.len(),
        deterministic: plans_identical(&replanned, &again),
    }
}

/// Measures one Figure 3 case: baseline throughput, a profiling pass,
/// a replan, and replanned throughput over the same tuples.
fn regression_case(
    budget: Duration,
    name: &'static str,
    lib: &Library,
    rel: RelId,
    fuel: u64,
    tuples: &[Vec<Value>],
) -> RegressionResult {
    let stats = profile_pass(lib, rel, fuel, tuples);
    let (replanned, report) = lib.replan_from_report(&stats);
    RegressionResult {
        name,
        baseline_tps: tuples_per_second(lib, rel, fuel, tuples, budget),
        replanned_tps: tuples_per_second(&replanned, rel, fuel, tuples, budget),
        replanned_rels: report.replanned.len(),
    }
}

const TUPLES_PER_CASE: usize = 48;

/// The Figure 3 non-regression side: BST, IFC, and STLC checker
/// workloads replanned from profiles of themselves.
pub fn fig3_regression(budget: Duration) -> Vec<RegressionResult> {
    let mut out = Vec::new();

    let bst = Bst::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let tuples: Vec<Vec<Value>> = (0..TUPLES_PER_CASE)
        .map(|_| {
            vec![
                Value::nat(0),
                Value::nat(24),
                bst.handwritten_gen(0, 24, 6, &mut rng),
            ]
        })
        .collect();
    out.push(regression_case(
        budget,
        "BST",
        bst.library(),
        bst.relation(),
        64,
        &tuples,
    ));

    let ifc = Ifc::new();
    let mut rng = SmallRng::seed_from_u64(2);
    let tuples: Vec<Vec<Value>> = (0..TUPLES_PER_CASE)
        .map(|_| {
            let (_, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
            vec![ifc.machine_value(&m1), ifc.machine_value(&m2)]
        })
        .collect();
    out.push(regression_case(
        budget,
        "IFC",
        ifc.library(),
        ifc.indist_relation(),
        64,
        &tuples,
    ));

    let stlc = Stlc::new();
    let mut rng = SmallRng::seed_from_u64(3);
    let empty_ctx = stlc.ctx(&[]);
    let mut tuples = Vec::new();
    while tuples.len() < TUPLES_PER_CASE {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 5, &mut rng) {
            tuples.push(vec![empty_ctx.clone(), e, ty]);
        }
    }
    out.push(regression_case(
        budget,
        "STLC",
        stlc.library(),
        stlc.typing_relation(),
        40,
        &tuples,
    ));

    out
}

fn regression_json(r: &RegressionResult) -> String {
    format!(
        "{{\"relation\":\"{}\",\"baseline_tps\":{:.3},\"replanned_tps\":{:.3},\
         \"ratio\":{:.4},\"replanned_rels\":{}}}",
        json_escape(r.name),
        r.baseline_tps,
        r.replanned_tps,
        r.ratio(),
        r.replanned_rels
    )
}

/// The whole comparison as one JSON document (`indrel.bench.plan/1`).
pub fn plan_json(budget: Duration) -> String {
    let adv = adversarial(budget);
    let fig3 = fig3_regression(budget);
    format!(
        "{{\"schema\":\"indrel.bench.plan/1\",\"budget_ms\":{},\
         \"adversarial\":{{\"relation\":\"good\",\"static_tps\":{:.3},\
         \"replanned_tps\":{:.3},\"speedup\":{:.4},\"replanned_rels\":{},\
         \"deterministic\":{}}},\"fig3\":[{}]}}",
        budget.as_millis(),
        adv.static_tps,
        adv.replanned_tps,
        adv.speedup(),
        adv.replanned_rels,
        adv.deterministic,
        fig3.iter()
            .map(regression_json)
            .collect::<Vec<_>>()
            .join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_replan_reorders_and_wins() {
        let r = adversarial(Duration::from_millis(40));
        assert_eq!(r.replanned_rels, 1, "exactly `good` is rescheduled");
        assert!(r.deterministic, "sibling replans must agree");
        assert!(
            r.speedup() >= 1.5,
            "structural speedup should dwarf the bar: {r}"
        );
    }

    #[test]
    fn plan_json_has_schema_and_cases() {
        let j = plan_json(Duration::from_millis(10));
        assert!(j.starts_with("{\"schema\":\"indrel.bench.plan/1\""), "{j}");
        for name in [
            "\"relation\":\"good\"",
            "\"relation\":\"BST\"",
            "\"relation\":\"IFC\"",
            "\"relation\":\"STLC\"",
        ] {
            assert!(j.contains(name), "{j}");
        }
        assert!(j.contains("\"speedup\""), "{j}");
        assert!(j.contains("\"deterministic\":true"), "{j}");
    }
}
