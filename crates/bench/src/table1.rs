//! Table 1: derived computations from Software Foundations.
//!
//! For every relation in the corpus the harness attempts (a) the full
//! derivation and (b) the restricted Algorithm 1 baseline, counting
//! successes per volume. Higher-order entries count toward the
//! "inductive relations" column only, as in the paper.

use indrel_core::{DeriveOptions, LibraryBuilder};
use indrel_corpus::{corpus_env, entries, Scope, Volume};
use std::fmt;

/// One volume's row of Table 1.
#[derive(Clone, Debug, Default)]
pub struct Row {
    /// Total inductive relations (including higher-order ones).
    pub relations: usize,
    /// First-order relations in scope of the framework.
    pub in_scope: usize,
    /// Checkers derived by the full algorithm.
    pub derived_full: usize,
    /// Checkers derived by the Algorithm 1 baseline.
    pub derived_alg1: usize,
    /// Names the full algorithm failed on (expected empty).
    pub failed: Vec<String>,
}

/// The whole table.
#[derive(Clone, Debug, Default)]
pub struct Table1 {
    /// Logical Foundations.
    pub lf: Row,
    /// Programming Language Foundations.
    pub plf: Row,
}

/// The paper's reported counts, for side-by-side printing.
pub const PAPER_LF: (usize, usize, usize) = (38, 30, 11);
/// The paper's reported counts for PLF.
pub const PAPER_PLF: (usize, usize, usize) = (71, 67, 25);

/// Runs the experiment.
pub fn run() -> Table1 {
    let (u, env) = corpus_env();
    let mut full = LibraryBuilder::new(u.clone(), env.clone());
    let mut table = Table1::default();
    for entry in entries() {
        let row = match entry.volume {
            Volume::Lf => &mut table.lf,
            Volume::Plf => &mut table.plf,
        };
        if entry.scope == Scope::HigherOrder {
            row.relations += 1;
            continue;
        }
        for rel_name in entry.relations {
            row.relations += 1;
            row.in_scope += 1;
            let id = env.rel_id(rel_name).expect("corpus relation");
            match full.derive_checker(id) {
                Ok(()) => row.derived_full += 1,
                Err(e) => row.failed.push(format!("{rel_name}: {e}")),
            }
            // Algorithm 1 gets a fresh builder per relation so one
            // failure cannot poison shared dependencies.
            let mut alg1 = LibraryBuilder::with_options(
                u.clone(),
                env.clone(),
                DeriveOptions {
                    algorithm1_only: true,
                    ..DeriveOptions::default()
                },
            );
            if alg1.derive_checker(id).is_ok() {
                row.derived_alg1 += 1;
            }
        }
    }
    table
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: derived computations from Software Foundations")?;
        writeln!(
            f,
            "{:<6} {:>10} {:>9} {:>13} {:>12}   (paper: total/derived/alg1)",
            "", "relations", "in-scope", "derived(full)", "derived(alg1)"
        )?;
        for (name, row, paper) in [("LF", &self.lf, PAPER_LF), ("PLF", &self.plf, PAPER_PLF)] {
            writeln!(
                f,
                "{:<6} {:>10} {:>9} {:>13} {:>12}   ({}/{}/{})",
                name,
                row.relations,
                row.in_scope,
                row.derived_full,
                row.derived_alg1,
                paper.0,
                paper.1,
                paper.2
            )?;
        }
        for row in [&self.lf, &self.plf] {
            for fail in &row.failed {
                writeln!(f, "  FULL-ALGORITHM FAILURE: {fail}")?;
            }
        }
        Ok(())
    }
}

/// Prints a per-relation breakdown: the syntactic features of each
/// relation (what knocks it out of Algorithm 1) and the step
/// fingerprint of its derived checker plan.
pub fn print_detail() {
    let (u, env) = corpus_env();
    let mut b = LibraryBuilder::new(u, env.clone());
    println!(
        "{:<6} {:<20} {:<35} plan steps",
        "volume", "relation", "features"
    );
    for entry in entries() {
        if entry.source.is_none() {
            println!(
                "{:<6} {:<20} out of scope: {}",
                entry.volume.to_string(),
                entry.name,
                entry.note
            );
            continue;
        }
        for rel_name in entry.relations {
            let id = env.rel_id(rel_name).expect("corpus relation");
            let feats = indrel_rel::analysis::features(env.relation(id));
            match b.derive_checker(id) {
                Ok(()) => {
                    let stats = b
                        .checker_plan(id)
                        .map(indrel_core::Plan::step_stats)
                        .unwrap_or_default();
                    println!(
                        "{:<6} {:<20} {:<35} {}",
                        entry.volume.to_string(),
                        rel_name,
                        feats.to_string(),
                        stats
                    );
                }
                Err(e) => println!(
                    "{:<6} {:<20} {:<35} DERIVATION FAILED: {e}",
                    entry.volume.to_string(),
                    rel_name,
                    feats.to_string()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_algorithm_derives_every_in_scope_relation() {
        let t = run();
        assert_eq!(
            t.lf.derived_full, t.lf.in_scope,
            "LF failures: {:?}",
            t.lf.failed
        );
        assert_eq!(
            t.plf.derived_full, t.plf.in_scope,
            "PLF failures: {:?}",
            t.plf.failed
        );
    }

    #[test]
    fn algorithm1_derives_a_strict_subset() {
        // The paper's Table 1 shape: the full algorithm handles far
        // more relations than the §3 core.
        let t = run();
        assert!(t.lf.derived_alg1 < t.lf.derived_full);
        assert!(t.plf.derived_alg1 < t.plf.derived_full);
        assert!(t.lf.derived_alg1 > 0);
        // Ratios comparable to the paper's (11/30 ≈ 0.37, 25/67 ≈ 0.37).
        let ratio_lf = t.lf.derived_alg1 as f64 / t.lf.derived_full as f64;
        assert!(
            ratio_lf < 0.8,
            "Algorithm 1 should be well under the full count"
        );
    }

    #[test]
    fn table_renders() {
        let t = run();
        let s = t.to_string();
        assert!(s.contains("LF"));
        assert!(s.contains("PLF"));
        assert!(!s.contains("FULL-ALGORITHM FAILURE"));
    }
}
