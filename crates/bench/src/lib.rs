//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§6).
//!
//! Each module implements one experiment; the binaries in `src/bin/`
//! print the corresponding table, and the Criterion benches in
//! `benches/` measure the same workloads under a statistics-grade
//! harness:
//!
//! | Paper artifact | Module | Binary | Bench |
//! |---|---|---|---|
//! | Table 1 | [`table1`] | `table1` | — |
//! | Figure 3 (left: checkers) | [`fig3`] | `fig3 checkers` | `fig3_checkers` |
//! | Figure 3 (right: generators) | [`fig3`] | `fig3 generators` | `fig3_generators` |
//! | §6.2 mutation study | [`mutation`] | `mutation` | — |
//! | §6.3 reflection | [`reflection`] | `reflection` | `reflection` |
//! | DESIGN.md ablations | [`ablation`] | — | `ablation` |
//! | EXPERIMENTS.md parallel scaling | [`par`] | `par_throughput` | — |
//! | EXPERIMENTS.md tabling speedups | [`memo`] | `memo` | — |
//! | EXPERIMENTS.md compiled backend | [`vm`] | `vm` | — |
//! | EXPERIMENTS.md concurrent serving | [`serve`] | `serve` | — |
//! | EXPERIMENTS.md observability smoke | [`obs`] | `obs` | `probe_overhead` |
//! | EXPERIMENTS.md query planner | [`plan`] | `plan` | — |

pub mod ablation;
pub mod fig3;
pub mod memo;
pub mod mutation;
pub mod obs;
pub mod par;
pub mod plan;
pub mod reflection;
pub mod serve;
pub mod table1;
pub mod vm;

/// Formats a signed percentage delta the way Figure 3 annotates bars.
pub fn delta_pct(handwritten: f64, derived: f64) -> f64 {
    (derived - handwritten) / handwritten * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_pct_signs() {
        assert!(delta_pct(100.0, 98.0) < 0.0);
        assert!(delta_pct(100.0, 102.0) > 0.0);
        assert_eq!(delta_pct(100.0, 100.0), 0.0);
    }
}
