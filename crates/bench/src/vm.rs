//! Compiled-backend throughput: closure tree vs bytecode VM on the
//! Figure 3 checker workloads.
//!
//! Same harness as [`crate::fig3`] — the handwritten generator is
//! fixed and the checker is swapped — but the derived side is measured
//! *twice*, once per execution backend: the lowered closure tree
//! (the default) and the register bytecode VM ([`Library::with_vm`]).
//! Three bars per case, so the document answers both questions at
//! once: how much the flat dispatch loop buys over the closure tree
//! (`vm_speedup`), and how close the compiled derived checker gets to
//! the handwritten baseline (`vm_ratio`, the ≥ 0.6 acceptance line).
//!
//! Exported as the `indrel.bench.vm/1` JSON schema via [`vm_json`]
//! (the `vm --json` flag, committed as `BENCH_vm.json`).

use indrel_bst::Bst;
use indrel_core::Library;
use indrel_ifc::Ifc;
use indrel_pbt::{Runner, TestOutcome};
use indrel_producers::json_escape;
use indrel_stlc::Stlc;
use indrel_term::{RelId, Value};
use std::fmt;
use std::time::Duration;

/// One three-bar group: handwritten, derived-on-closures, derived-on-VM.
#[derive(Clone, Debug)]
pub struct VmCaseResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Handwritten tests/second.
    pub handwritten_tps: f64,
    /// Derived checker on the closure-tree backend, tests/second.
    pub closure_tps: f64,
    /// Derived checker on the bytecode VM, tests/second.
    pub vm_tps: f64,
}

impl VmCaseResult {
    /// Derived-closure throughput as a fraction of handwritten.
    pub fn closure_ratio(&self) -> f64 {
        self.closure_tps / self.handwritten_tps
    }

    /// Derived-VM throughput as a fraction of handwritten — the
    /// acceptance line is ≥ 0.6 on BST and IFC.
    pub fn vm_ratio(&self) -> f64 {
        self.vm_tps / self.handwritten_tps
    }

    /// Dispatch-loop speedup over the closure tree (VM / closures).
    pub fn vm_speedup(&self) -> f64 {
        self.vm_tps / self.closure_tps
    }
}

impl fmt::Display for VmCaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} hand {:>11.0} t/s   closures {:>11.0} t/s ({:>5.1}%)   \
             vm {:>11.0} t/s ({:>5.1}%)   speedup {:>5.2}x",
            self.name,
            self.handwritten_tps,
            self.closure_tps,
            self.closure_ratio() * 100.0,
            self.vm_tps,
            self.vm_ratio() * 100.0,
            self.vm_speedup()
        )
    }
}

type BoxedGen<'a> = Box<dyn FnMut(u64, &mut dyn rand::RngCore) -> Option<Vec<Value>> + 'a>;
type BoxedProp<'a> = Box<dyn FnMut(&[Value]) -> TestOutcome + 'a>;

/// Measures one case: three unarmed throughput runs over the same
/// generator at the same seed, one per checker. The closure and VM
/// props call [`Library::check`] directly on sibling forks of the same
/// library — same plans, same memo state (none), only the backend
/// differs.
#[allow(clippy::too_many_arguments)]
fn measure_case(
    budget: Duration,
    name: &'static str,
    seed: u64,
    size: u64,
    mut gen: BoxedGen<'_>,
    mut hand: BoxedProp<'_>,
    closure: &Library,
    vm: &Library,
    rel: RelId,
    fuel: u64,
) -> VmCaseResult {
    debug_assert!(vm.vm_enabled() && !closure.vm_enabled());
    let runner = Runner::new(seed).with_size(size);
    let h = runner.throughput(budget, 64, &mut gen, &mut hand);
    let mut closure_prop =
        |args: &[Value]| TestOutcome::from_check(closure.check(rel, fuel, fuel, args));
    let c = runner.throughput(budget, 64, &mut gen, &mut closure_prop);
    let mut vm_prop = |args: &[Value]| TestOutcome::from_check(vm.check(rel, fuel, fuel, args));
    let v = runner.throughput(budget, 64, &mut gen, &mut vm_prop);
    VmCaseResult {
        name,
        handwritten_tps: h.tests_per_second(),
        closure_tps: c.tests_per_second(),
        vm_tps: v.tests_per_second(),
    }
}

const BST_FUEL: u64 = 64;
const STLC_FUEL: u64 = 40;
const IFC_FUEL: u64 = 64;

/// Measures the three Figure 3 checker cases across both backends.
pub fn checkers(budget: Duration) -> Vec<VmCaseResult> {
    let mut out = Vec::new();

    // ---- BST ----
    let bst = Bst::new();
    let closure = bst.library().fork();
    let vm = bst.library().fork().with_vm();
    let b = bst.clone();
    out.push(measure_case(
        budget,
        "BST",
        1,
        6,
        Box::new(move |size, rng| {
            Some(vec![
                Value::nat(0),
                Value::nat(24),
                b.handwritten_gen(0, 24, size, rng),
            ])
        }),
        Box::new(|args| TestOutcome::from_bool(bst.handwritten_check(0, 24, &args[2]))),
        &closure,
        &vm,
        bst.relation(),
        BST_FUEL,
    ));

    // ---- IFC ----
    let ifc = Ifc::new();
    let closure = ifc.library().fork();
    let vm = ifc.library().fork().with_vm();
    let i = ifc.clone();
    out.push(measure_case(
        budget,
        "IFC",
        2,
        6,
        Box::new(move |size, rng| {
            let (_, m1, m2) = i.gen_indist_pair(size, rng);
            Some(vec![i.machine_value(&m1), i.machine_value(&m2)])
        }),
        Box::new(|args| TestOutcome::from_bool(ifc.handwritten_indist_value(&args[0], &args[1]))),
        &closure,
        &vm,
        ifc.indist_relation(),
        IFC_FUEL,
    ));

    // ---- STLC ----
    let stlc = Stlc::new();
    let closure = stlc.library().fork();
    let vm = stlc.library().fork().with_vm();
    let s = stlc.clone();
    let empty_ctx = stlc.ctx(&[]);
    out.push(measure_case(
        budget,
        "STLC",
        3,
        5,
        Box::new(move |size, rng| {
            let ty = s.random_ty(2, rng);
            let e = s.handwritten_gen(&[], &ty, size, rng)?;
            Some(vec![empty_ctx.clone(), e, ty])
        }),
        Box::new(|args| TestOutcome::from_bool(stlc.handwritten_check(&[], &args[1], &args[2]))),
        &closure,
        &vm,
        stlc.typing_relation(),
        STLC_FUEL,
    ));

    out
}

fn case_json(r: &VmCaseResult) -> String {
    format!(
        "{{\"relation\":\"{}\",\"handwritten_tps\":{:.3},\"closure_tps\":{:.3},\
         \"vm_tps\":{:.3},\"closure_ratio\":{:.4},\"vm_ratio\":{:.4},\"vm_speedup\":{:.4}}}",
        json_escape(r.name),
        r.handwritten_tps,
        r.closure_tps,
        r.vm_tps,
        r.closure_ratio(),
        r.vm_ratio(),
        r.vm_speedup()
    )
}

/// The whole comparison as one JSON document (`indrel.bench.vm/1`).
pub fn vm_json(budget: Duration) -> String {
    let cases = checkers(budget);
    format!(
        "{{\"schema\":\"indrel.bench.vm/1\",\"budget_ms\":{},\"cases\":[{}]}}",
        budget.as_millis(),
        cases.iter().map(case_json).collect::<Vec<_>>().join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_bars_are_positive() {
        for r in checkers(Duration::from_millis(30)) {
            assert!(r.handwritten_tps > 0.0, "{r}");
            assert!(r.closure_tps > 0.0, "{r}");
            assert!(r.vm_tps > 0.0, "{r}");
        }
    }

    #[test]
    fn vm_json_has_schema_and_cases() {
        let j = vm_json(Duration::from_millis(10));
        assert!(j.starts_with("{\"schema\":\"indrel.bench.vm/1\""), "{j}");
        for name in [
            "\"relation\":\"BST\"",
            "\"relation\":\"IFC\"",
            "\"relation\":\"STLC\"",
        ] {
            assert!(j.contains(name), "{j}");
        }
        assert!(j.contains("\"vm_speedup\""), "{j}");
    }
}
