//! Ablations for the design decisions DESIGN.md calls out.
//!
//! 1. **Thunked, localized backtracking** (§2): a derived checker's
//!    handler list is tried lazily, so inputs that fail to match any
//!    conclusion pattern are rejected almost for free. We measure the
//!    derived BST checker on valid trees vs trees that violate the
//!    invariant at the root.
//! 2. **Lazy enumeration** (the `E` producer): sequencing an enumerator
//!    into a checker (`bind_ec`) stops at the first witness. We measure
//!    time-to-first-witness vs time-to-all-witnesses on a constrained
//!    query with many solutions (`le ?n 10`).
//! 3. **Closure lowering vs plan interpretation**: derived checkers
//!    execute as closure trees by default, with the step interpreter
//!    kept as baseline. Measured finding: the two are within noise of
//!    each other — the executor's cost is term traversal and
//!    allocation, not step dispatch.
//! 4. **Produce-and-match vs check for known recursive premises**
//!    (`DeriveOptions::check_known_recursive`): exercised as a unit
//!    test — switching the strategy must not change checker verdicts.

use indrel_bst::Bst;
use indrel_term::Value;
use std::time::{Duration, Instant};

/// Result of the backtracking-locality ablation.
#[derive(Clone, Copy, Debug)]
pub struct Locality {
    /// Checks per second on valid trees (the full traversal).
    pub valid_cps: f64,
    /// Checks per second on root-invalid trees (early rejection).
    pub invalid_cps: f64,
}

/// Measures how cheap local backtracking failure is.
pub fn backtracking_locality(budget: Duration) -> Locality {
    let bst = Bst::new();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(31);
    let valid: Vec<Value> = (0..64)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    // Root key out of bounds: every handler's checks fail immediately.
    let invalid: Vec<Value> = valid
        .iter()
        .map(|t| bst.tree_node(99, t.clone(), bst.leaf()))
        .collect();
    let measure = |set: &[Value]| {
        let start = Instant::now();
        let mut n = 0usize;
        while start.elapsed() < budget {
            for t in set {
                let _ = bst.derived_check(0, 24, t, 64);
                n += 1;
            }
        }
        n as f64 / start.elapsed().as_secs_f64()
    };
    Locality {
        valid_cps: measure(&valid),
        invalid_cps: measure(&invalid),
    }
}

/// Result of the lowering ablation.
#[derive(Clone, Copy, Debug)]
pub struct Lowering {
    /// Checks per second through the lowered closures (default).
    pub lowered_cps: f64,
    /// Checks per second through the step interpreter (baseline).
    pub interpreted_cps: f64,
}

/// Measures closure lowering against plan interpretation on the
/// derived BST checker.
pub fn lowering(budget: Duration) -> Lowering {
    let bst = Bst::new();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(33);
    let trees: Vec<Value> = (0..64)
        .map(|_| bst.handwritten_gen(0, 24, 6, &mut rng))
        .collect();
    let rel = bst.relation();
    let lib = bst.library().clone();
    let args: Vec<Vec<Value>> = trees
        .into_iter()
        .map(|t| vec![Value::nat(0), Value::nat(24), t])
        .collect();
    let measure = |interpreted: bool| {
        let start = Instant::now();
        let mut n = 0usize;
        while start.elapsed() < budget {
            for a in &args {
                let r = if interpreted {
                    lib.check_interpreted(rel, 64, 64, a)
                } else {
                    lib.check(rel, 64, 64, a)
                };
                std::hint::black_box(r);
                n += 1;
            }
        }
        n as f64 / start.elapsed().as_secs_f64()
    };
    Lowering {
        lowered_cps: measure(false),
        interpreted_cps: measure(true),
    }
}

/// Result of the lazy-enumeration ablation.
#[derive(Clone, Copy, Debug)]
pub struct Laziness {
    /// Enumerations per second taking only the first witness.
    pub first_ips: f64,
    /// Enumerations per second forcing the whole witness set.
    pub all_ips: f64,
}

/// Measures the payoff of lazy enumerator streams on a query with many
/// witnesses: enumerating `n` such that `le n 10` (11 witnesses; the
/// lazy consumer stops at the first).
pub fn enumeration_laziness(budget: Duration) -> Laziness {
    let (u, env) = indrel_corpus::corpus_env();
    let le = env.rel_id("le").expect("corpus relation");
    let mut b = indrel_core::LibraryBuilder::new(u, env);
    let mode = indrel_core::Mode::producer(2, &[0]);
    b.derive_producer(le, mode.clone())
        .expect("le producer derives");
    let lib = b.build();
    let bound = Value::nat(10);
    let measure = |force_all: bool| {
        let start = Instant::now();
        let mut n = 0usize;
        while start.elapsed() < budget {
            for _ in 0..16 {
                let s = lib.enumerate(le, &mode, 12, 12, std::slice::from_ref(&bound));
                if force_all {
                    let _ = std::hint::black_box(s.values());
                } else {
                    let _ = std::hint::black_box(s.first());
                }
                n += 1;
            }
        }
        n as f64 / start.elapsed().as_secs_f64()
    };
    Laziness {
        first_ips: measure(false),
        all_ips: measure(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indrel_core::{DeriveOptions, LibraryBuilder};

    #[test]
    fn invalid_inputs_reject_faster() {
        let l = backtracking_locality(Duration::from_millis(40));
        assert!(
            l.invalid_cps > l.valid_cps,
            "early rejection should beat full traversal: {l:?}"
        );
    }

    #[test]
    fn first_witness_is_cheaper_than_all() {
        let l = enumeration_laziness(Duration::from_millis(60));
        assert!(
            l.first_ips > l.all_ips * 1.5,
            "lazy first() should clearly beat forcing all witnesses: {l:?}"
        );
    }

    #[test]
    fn lowering_agrees_and_is_competitive() {
        let l = lowering(Duration::from_millis(40));
        // Same verdicts are asserted in indrel-core's tests; here we
        // pin the performance claim: lowering is at least not a big
        // regression over interpretation.
        assert!(
            l.lowered_cps > l.interpreted_cps * 0.5,
            "lowered execution regressed badly: {l:?}"
        );
    }

    #[test]
    fn check_known_recursive_option_preserves_verdicts() {
        // Ablation 3: flipping the strategy for fully-instantiated
        // recursive premises must not change results.
        let (u, env) = indrel_corpus::corpus_env();
        let even = env.rel_id("ev").unwrap();
        let mut a = LibraryBuilder::with_options(
            u.clone(),
            env.clone(),
            DeriveOptions {
                check_known_recursive: true,
                ..DeriveOptions::default()
            },
        );
        a.derive_checker(even).unwrap();
        a.derive_producer(even, indrel_core::Mode::producer(1, &[0]))
            .unwrap();
        let a = a.build();
        let mut b = LibraryBuilder::new(u, env);
        b.derive_checker(even).unwrap();
        b.derive_producer(even, indrel_core::Mode::producer(1, &[0]))
            .unwrap();
        let b = b.build();
        for n in 0..20u64 {
            assert_eq!(
                a.check(even, 30, 30, &[Value::nat(n)]),
                b.check(even, 30, 30, &[Value::nat(n)])
            );
        }
        let ea: Vec<_> = a
            .enumerate(even, &indrel_core::Mode::producer(1, &[0]), 5, 5, &[])
            .values();
        let eb: Vec<_> = b
            .enumerate(even, &indrel_core::Mode::producer(1, &[0]), 5, 5, &[])
            .values();
        assert_eq!(ea, eb);
    }
}
