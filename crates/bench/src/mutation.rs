//! The §6.2 mutation study: mean tests to failure with handwritten vs
//! derived generators, under the suite's injected bugs.
//!
//! * BST — the buggy `insert` violates the search-tree invariant;
//! * STLC — the buggy `subst`/`lift` violate type preservation;
//! * IFC — the buggy label propagation violates noninterference (the
//!   derived side uses the *derived variation generator* for the second
//!   machine).

use indrel_bst::Bst;
use indrel_ifc::{Ifc, Mutation as IfcMutation};
use indrel_pbt::{MeanTestsToFailure, Runner, TestOutcome};
use indrel_stlc::{Mutation as StlcMutation, Stlc};
use indrel_term::Value;
use std::fmt;

/// One mutation row: the same bug hunted with both generators.
#[derive(Clone, Debug)]
pub struct MutationResult {
    /// Case-study and mutation name.
    pub name: &'static str,
    /// Mean tests to failure with the handwritten generator.
    pub handwritten: MeanTestsToFailure,
    /// Mean tests to failure with the derived generator.
    pub derived: MeanTestsToFailure,
}

impl fmt::Display for MutationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} handwritten MTF {:>8.1} ({}/{} found)   derived MTF {:>8.1} ({}/{} found)",
            self.name,
            self.handwritten.mean,
            self.handwritten.failures,
            self.handwritten.failures + self.handwritten.exhausted,
            self.derived.mean,
            self.derived.failures,
            self.derived.failures + self.derived.exhausted,
        )
    }
}

/// Runs the whole study.
pub fn run(trials: usize, budget: usize) -> Vec<MutationResult> {
    let mut out = Vec::new();

    // ---- BST: buggy insert ----
    {
        let bst = Bst::new();
        let prop = {
            let bst = bst.clone();
            move |args: &[Value]| {
                let x = args[0].as_nat().expect("nat");
                let t2 = bst.insert_buggy(x, &args[1]);
                TestOutcome::from_bool(bst.handwritten_check(0, 24, &t2))
            }
        };
        let hand_gen = {
            let bst = bst.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let t = bst.handwritten_gen(0, 24, size, rng);
                let x = rand::Rng::gen_range(rng, 1..24u64);
                Some(vec![Value::nat(x), t])
            }
        };
        let derv_gen = {
            let bst = bst.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let t = bst.derived_gen(0, 24, size, rng)?;
                let x = rand::Rng::gen_range(rng, 1..24u64);
                Some(vec![Value::nat(x), t])
            }
        };
        let runner = Runner::new(21).with_size(6);
        out.push(MutationResult {
            name: "BST/insert",
            handwritten: runner.mean_tests_to_failure(trials, budget, hand_gen, prop.clone()),
            derived: runner.mean_tests_to_failure(trials, budget, derv_gen, prop),
        });
    }

    // ---- STLC: buggy substitution and lifting ----
    for (name, mutation) in [
        ("STLC/subst", StlcMutation::SubstOffByOne),
        ("STLC/lift", StlcMutation::LiftNoCutoff),
    ] {
        let stlc = Stlc::new();
        let prop = {
            let stlc = stlc.clone();
            move |args: &[Value]| match stlc.preservation_holds(mutation, &args[0], &args[1]) {
                None => TestOutcome::Discard,
                Some(ok) => TestOutcome::from_bool(ok),
            }
        };
        let hand_gen = {
            let stlc = stlc.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let ty = stlc.random_ty(2, rng);
                let e = stlc.handwritten_gen(&[], &ty, size, rng)?;
                Some(vec![e, ty])
            }
        };
        let derv_gen = {
            let stlc = stlc.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let ty = stlc.random_ty(2, rng);
                let e = stlc.derived_gen(&[], &ty, size, rng)?;
                Some(vec![e, ty])
            }
        };
        let runner = Runner::new(22).with_size(6);
        out.push(MutationResult {
            name,
            handwritten: runner.mean_tests_to_failure(trials, budget, hand_gen, prop.clone()),
            derived: runner.mean_tests_to_failure(trials, budget, derv_gen, prop),
        });
    }

    // ---- IFC: buggy label propagation ----
    // The program is reconstructed from a seed inside the property, so
    // the pair-generation size must be a shared constant (not the
    // runner's size) to keep generator and property in sync.
    const IFC_PAIR_SIZE: u64 = 6;
    for (name, mutation) in [
        ("IFC/add-no-join", IfcMutation::AddNoJoin),
        ("IFC/load-no-join", IfcMutation::LoadNoJoin),
    ] {
        let ifc = Ifc::new();
        // Programs are regenerated inside the generator; the test input
        // is the encoded (prog-seed, machines) triple. We encode the
        // program as a seed value to keep inputs first-order.
        let prop = {
            let ifc = ifc.clone();
            move |args: &[Value]| {
                let seed = args[0].as_nat().expect("nat");
                let mut prng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
                let (prog, _, _) = ifc.gen_indist_pair(IFC_PAIR_SIZE, &mut prng);
                let m1 = ifc.machine_of_value(&args[1]).expect("machine");
                let m2 = ifc.machine_of_value(&args[2]).expect("machine");
                match ifc.noninterference_holds(&prog, &m1, &m2, mutation) {
                    None => TestOutcome::Discard,
                    Some(ok) => TestOutcome::from_bool(ok),
                }
            }
        };
        let hand_gen = {
            let ifc = ifc.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let seed = rand::Rng::gen_range(rng, 0..u32::MAX as u64);
                let mut prng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
                let _ = size;
                let (_, m1, m2) = ifc.gen_indist_pair(IFC_PAIR_SIZE, &mut prng);
                Some(vec![
                    Value::nat(seed),
                    ifc.machine_value(&m1),
                    ifc.machine_value(&m2),
                ])
            }
        };
        let derv_gen = {
            let ifc = ifc.clone();
            move |size: u64, rng: &mut dyn rand::RngCore| {
                let seed = rand::Rng::gen_range(rng, 0..u32::MAX as u64);
                let mut prng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
                let _ = size;
                let (_, m1, _) = ifc.gen_indist_pair(IFC_PAIR_SIZE, &mut prng);
                // Derived variation generator for the second machine.
                let m2 = ifc.derived_vary(&m1, 12, rng)?;
                Some(vec![
                    Value::nat(seed),
                    ifc.machine_value(&m1),
                    ifc.machine_value(&m2),
                ])
            }
        };
        let runner = Runner::new(23).with_size(6);
        out.push(MutationResult {
            name,
            handwritten: runner.mean_tests_to_failure(trials, budget, hand_gen, prop.clone()),
            derived: runner.mean_tests_to_failure(trials, budget, derv_gen, prop),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_generators_find_every_mutation() {
        for row in run(5, 20_000) {
            assert!(row.handwritten.failures > 0, "handwritten missed {row}");
            assert!(row.derived.failures > 0, "derived missed {row}");
        }
    }
}
