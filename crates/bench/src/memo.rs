//! Tabling benchmark: derived-checker sweeps with and without the
//! monotonicity-justified memo table ([`Library::with_memo`]).
//!
//! Each case fixes a corpus of argument tuples and a fuel, then times
//! whole corpus sweeps: one sweep = a fresh session fork checking every
//! tuple once, so the memoized side starts cold and earns every hit
//! within the sweep (the realistic PBT shape — one session, many
//! checker calls). The reported numbers are best-of-`passes`
//! (see `best`) over alternating plain/memoized sweeps.
//!
//! Two case families:
//!
//! * **speedup** — the fig3 checker workloads (BST, STLC) run through
//!   fully derived pipelines. The BST case derives the ordering
//!   relations instead of registering the handwritten primitives fig3
//!   uses (the memo table serves derived checkers only), and its reuse
//!   comes from *within* one pass: `le'`/`lt'` bound subgoals repeat
//!   across the corpus. The STLC case takes the multi-property suite
//!   shape — one session drives the typing checker over the same
//!   corpus once per property, the way the fuzz harness's oracle bank
//!   and any regression suite do — so its reuse comes from *across*
//!   passes.
//! * **miss-heavy** — the fig3 BST configuration (handwritten
//!   `le'`/`lt'`) over structurally distinct trees with wide-spread
//!   keys, so the table sees almost no reuse. This bounds the price of
//!   leaving tabling on when it cannot help.

use indrel_bst::{Bst, BST_SOURCE};
use indrel_core::{Library, LibraryBuilder, MemoStats};
use indrel_producers::json_escape;
use indrel_rel::parse::parse_program;
use indrel_rel::RelEnv;
use indrel_stlc::Stlc;
use indrel_term::{CtorId, RelId, Universe, Value};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::time::Instant;

const BST_FUEL: u64 = 64;
const STLC_FUEL: u64 = 40;
/// Property passes per sweep in the STLC suite case: the fuzz oracle
/// bank drives each checker from four oracles, so that is the shape.
const SUITE_PASSES: usize = 4;

/// One memo-vs-plain comparison.
#[derive(Clone, Debug)]
pub struct MemoCase {
    /// Workload name.
    pub name: &'static str,
    /// Checker calls per sweep (corpus size).
    pub calls: usize,
    /// Best-of-passes wall milliseconds per plain sweep.
    pub plain_ms: f64,
    /// Best-of-passes wall milliseconds per memoized sweep.
    pub memo_ms: f64,
    /// Memo counters from the last memoized sweep.
    pub stats: MemoStats,
}

impl MemoCase {
    /// Plain time over memoized time: >1 means tabling wins.
    pub fn speedup(&self) -> f64 {
        self.plain_ms / self.memo_ms
    }

    /// Signed percentage cost of enabling the table (negative when it
    /// wins); the miss-heavy acceptance bound is `overhead_pct ≤ 10`.
    pub fn overhead_pct(&self) -> f64 {
        (self.memo_ms - self.plain_ms) / self.plain_ms * 100.0
    }
}

impl std::fmt::Display for MemoCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} plain {:>9.3} ms   memo {:>9.3} ms   speedup {:>6.2}x   \
             ({} hits / {} misses)",
            self.name,
            self.plain_ms,
            self.memo_ms,
            self.speedup(),
            self.stats.hits,
            self.stats.misses,
        )
    }
}

/// Best-of-passes: timing noise on a shared host is strictly additive
/// (preemption, frequency dips), so the minimum is the estimator that
/// converges on the true cost of a sweep — medians over the same
/// passes still wander by several percent run to run, which is wider
/// than the miss-case overhead this benchmark exists to bound.
fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Times `passes` plain and `passes` memoized sweeps (alternating, so
/// neither side monopolizes warm caches), each on a fresh fork. One
/// sweep runs `suite` passes over the corpus in the same session —
/// `1` for plain corpus sweeps, more for the multi-property suite
/// shape.
fn measure(
    name: &'static str,
    base: &Library,
    rel: RelId,
    fuel: u64,
    corpus: &[Vec<Value>],
    suite: usize,
    passes: usize,
) -> MemoCase {
    let sweep = |lib: &Library| {
        let t0 = Instant::now();
        let mut decided = 0u64;
        for _ in 0..suite {
            for args in corpus {
                if lib.check(rel, fuel, fuel, args).is_some() {
                    decided += 1;
                }
            }
        }
        std::hint::black_box(decided);
        t0.elapsed().as_secs_f64() * 1e3
    };
    // One untimed warm-up sweep fills the type-enumeration caches the
    // two sides would otherwise race to populate.
    sweep(&base.fork());
    let mut plain = Vec::with_capacity(passes);
    let mut memo = Vec::with_capacity(passes);
    let mut stats = MemoStats::default();
    for _ in 0..passes {
        plain.push(sweep(&base.fork()));
        let lib = base.fork().with_memo();
        memo.push(sweep(&lib));
        stats = lib.memo_stats();
    }
    MemoCase {
        name,
        calls: corpus.len(),
        plain_ms: best(&plain),
        memo_ms: best(&memo),
        stats,
    }
}

/// A random search tree respecting `(lo, hi)` bounds, like the BST
/// suite's handwritten generator but built against the caller's ctor
/// ids. Shared with the serve benchmark, which drives the same
/// workload through the concurrent request layer.
pub(crate) fn gen_tree(
    leaf: CtorId,
    node: CtorId,
    lo: u64,
    hi: u64,
    depth: u64,
    rng: &mut SmallRng,
) -> Value {
    if depth == 0 || hi <= lo + 1 || rng.gen_range(0..5u32) == 0 {
        return Value::ctor(leaf, vec![]);
    }
    let x = rng.gen_range(lo + 1..hi);
    Value::ctor(
        node,
        vec![
            Value::nat(x),
            gen_tree(leaf, node, lo, x, depth - 1, rng),
            gen_tree(leaf, node, x, hi, depth - 1, rng),
        ],
    )
}

/// The fully derived BST pipeline: `bst` plus derived `le'`/`lt'`.
pub(crate) fn derived_bst() -> (Library, RelId, CtorId, CtorId) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(&mut u, &mut env, BST_SOURCE).expect("embedded source parses");
    let bst = env.rel_id("bst").expect("declared");
    let leaf = u.ctor_id("Leaf").expect("declared");
    let node = u.ctor_id("Node").expect("declared");
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(bst).expect("bst checker derives");
    (b.build(), bst, leaf, node)
}

/// The BST speedup case: `trees` random in-bounds trees, keys in a
/// small range so bound subgoals repeat across the corpus.
pub fn bst_case(trees: usize, passes: usize) -> MemoCase {
    let (lib, bst, leaf, node) = derived_bst();
    let mut rng = SmallRng::seed_from_u64(9);
    let corpus: Vec<Vec<Value>> = (0..trees)
        .map(|_| {
            vec![
                Value::nat(0),
                Value::nat(16),
                gen_tree(leaf, node, 0, 16, 6, &mut rng),
            ]
        })
        .collect();
    measure("BST", &lib, bst, BST_FUEL, &corpus, 1, passes)
}

/// The STLC speedup case: well-typed terms from the handwritten
/// generator, checked by the derived typing checker once per property
/// of a `SUITE_PASSES`-property suite (see the module docs).
pub fn stlc_case(terms: usize, passes: usize) -> MemoCase {
    let stlc = Stlc::new();
    let mut rng = SmallRng::seed_from_u64(10);
    let mut corpus: Vec<Vec<Value>> = Vec::with_capacity(terms);
    while corpus.len() < terms {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 5, &mut rng) {
            corpus.push(vec![stlc.ctx(&[]), e, ty]);
        }
    }
    measure(
        "STLC-suite",
        stlc.library(),
        stlc.typing_relation(),
        STLC_FUEL,
        &corpus,
        SUITE_PASSES,
        passes,
    )
}

/// The miss-heavy case: the fig3 BST configuration (handwritten
/// ordering primitives) over distinct trees with keys spread across
/// `0..2^32`, so cached verdicts are essentially never reused.
pub fn miss_case(trees: usize, passes: usize) -> MemoCase {
    let bst = Bst::new();
    let hi = u64::from(u32::MAX);
    let mut rng = SmallRng::seed_from_u64(11);
    let corpus: Vec<Vec<Value>> = (0..trees)
        .map(|_| {
            vec![
                Value::nat(0),
                Value::nat(hi),
                bst.handwritten_gen(0, hi, 6, &mut rng),
            ]
        })
        .collect();
    measure(
        "BST-miss",
        bst.library(),
        bst.relation(),
        BST_FUEL,
        &corpus,
        1,
        passes,
    )
}

fn case_json(c: &MemoCase) -> String {
    format!(
        "{{\"relation\":\"{}\",\"calls\":{},\"plain_ms\":{:.3},\"memo_ms\":{:.3},\
         \"speedup\":{:.3},\"overhead_pct\":{:.3},\"memo\":{{\"hits\":{},\"misses\":{},\
         \"insertions\":{},\"none_skipped\":{},\"full_skipped\":{},\"entries\":{}}}}}",
        json_escape(c.name),
        c.calls,
        c.plain_ms,
        c.memo_ms,
        c.speedup(),
        c.overhead_pct(),
        c.stats.hits,
        c.stats.misses,
        c.stats.insertions,
        c.stats.none_skipped,
        c.stats.full_skipped,
        c.stats.entries,
    )
}

/// Runs all three cases at the given scale.
pub fn all_cases(trees: usize, terms: usize, passes: usize) -> Vec<MemoCase> {
    vec![
        bst_case(trees, passes),
        stlc_case(terms, passes),
        miss_case(trees, passes),
    ]
}

/// The whole benchmark as one JSON document (`indrel.bench.memo/1`):
/// the two speedup cases followed by the miss-heavy overhead case.
pub fn memo_json(cases: &[MemoCase], passes: usize) -> String {
    format!(
        "{{\"schema\":\"indrel.bench.memo/1\",\"passes\":{},\"cases\":[{}]}}",
        passes,
        cases.iter().map(case_json).collect::<Vec<_>>().join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_sweeps_agree_with_plain_sweeps() {
        let (lib, bst, leaf, node) = derived_bst();
        let mut rng = SmallRng::seed_from_u64(12);
        let memoized = lib.fork().with_memo();
        for _ in 0..40 {
            let t = gen_tree(leaf, node, 0, 8, 4, &mut rng);
            let args = [Value::nat(0), Value::nat(8), t];
            for fuel in [2, BST_FUEL] {
                assert_eq!(
                    memoized.check(bst, fuel, fuel, &args),
                    lib.check(bst, fuel, fuel, &args),
                );
            }
        }
        assert!(memoized.memo_stats().hits > 0, "corpus must share subgoals");
    }

    #[test]
    fn memo_json_has_schema_and_cases() {
        let cases = all_cases(6, 4, 1);
        let j = memo_json(&cases, 1);
        assert!(j.starts_with("{\"schema\":\"indrel.bench.memo/1\""), "{j}");
        for name in [
            "\"relation\":\"BST\"",
            "\"relation\":\"STLC-suite\"",
            "\"relation\":\"BST-miss\"",
        ] {
            assert!(j.contains(name), "{j}");
        }
        assert!(j.contains("\"memo\":{\"hits\":"), "{j}");
    }
}
