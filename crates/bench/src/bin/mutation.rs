//! Regenerates the §6.2 mutation study: mean tests to failure with
//! handwritten vs derived generators on the suite's injected bugs.
//!
//! ```text
//! cargo run -p indrel-bench --release --bin mutation
//! ```

fn main() {
    let trials: usize = std::env::var("MTF_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let budget: usize = std::env::var("MTF_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    println!("§6.2 mutation study: mean tests to failure (MTF), {trials} trials, budget {budget}");
    println!("(the paper reports the two generators' MTF as indistinguishable)");
    for row in indrel_bench::mutation::run(trials, budget) {
        println!("  {row}");
    }
}
