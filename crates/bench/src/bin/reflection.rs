//! Regenerates the §6.3 computational-reflection experiment:
//! `Sorted (repeat 1 2000)`, explicit proof object vs derived checker.
//!
//! ```text
//! cargo run -p indrel-bench --release --bin reflection
//! ```

use indrel_bench::reflection::{run, DisplayReport, PAPER_SECONDS};

fn main() {
    println!("§6.3 proof by computational reflection: Sorted (repeat 1 n)");
    println!(
        "(paper, n=2000: construct {:.3}s, typecheck {:.3}s, reflective {:.3}s + Qed {:.3}s)",
        PAPER_SECONDS.0, PAPER_SECONDS.1, PAPER_SECONDS.2, PAPER_SECONDS.3
    );
    for report in run(&[500, 1000, 2000, 4000]) {
        println!("  {}", DisplayReport(report));
    }
    println!();
    println!("The kernel re-checks every node's premise against its sub-proof's");
    println!("conclusion with honest structural comparisons, so the naive route");
    println!("scales quadratically while the reflective route stays linear.");
}
