//! Regenerates Figure 3: throughput of the QuickChick case studies
//! using handwritten or derived checkers (left) and generators (right).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin fig3              # both sides
//! cargo run -p indrel-bench --release --bin fig3 -- checkers
//! cargo run -p indrel-bench --release --bin fig3 -- generators
//! cargo run -p indrel-bench --release --bin fig3 -- both --json [PATH]
//! ```
//!
//! `--json` additionally writes the whole figure — throughput, deltas,
//! and a fixed-count `SearchStats` telemetry pass per case — as one
//! machine-readable document (default path `BENCH_fig3.json`).
//!
//! Environment: `FIG3_BUDGET_MS` (wall-clock budget per throughput run,
//! default 1500), `FIG3_STATS_TESTS` (tests in the armed telemetry
//! pass, default 2000).

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "both".to_string();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let path = match it.peek() {
                    Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                    _ => "BENCH_fig3.json".to_string(),
                };
                json_path = Some(path);
            }
            other => which = other.to_string(),
        }
    }
    let budget = Duration::from_millis(
        std::env::var("FIG3_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1500),
    );
    let stats_tests = std::env::var("FIG3_STATS_TESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    if let Some(path) = json_path {
        let doc = indrel_bench::fig3::fig3_json(budget, stats_tests);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    if which == "checkers" || which == "both" {
        println!("Figure 3 (left): tests/second, handwritten vs derived checkers");
        println!("(paper deltas: BST -0.82%, IFC -0.51%, STLC -1.18%)");
        for r in indrel_bench::fig3::checkers(budget) {
            println!("  {r}");
        }
        println!();
    }
    if which == "generators" || which == "both" {
        println!("Figure 3 (right): tests/second, handwritten vs derived generators");
        println!("(paper deltas: BST -1.21%, STLC -1.74%)");
        for r in indrel_bench::fig3::generators(budget) {
            println!("  {r}");
        }
    }
}
