//! Regenerates Figure 3: throughput of the QuickChick case studies
//! using handwritten or derived checkers (left) and generators (right).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin fig3              # both sides
//! cargo run -p indrel-bench --release --bin fig3 -- checkers
//! cargo run -p indrel-bench --release --bin fig3 -- generators
//! ```

use std::time::Duration;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let budget = Duration::from_millis(
        std::env::var("FIG3_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1500),
    );
    if which == "checkers" || which == "both" {
        println!("Figure 3 (left): tests/second, handwritten vs derived checkers");
        println!("(paper deltas: BST -0.82%, IFC -0.51%, STLC -1.18%)");
        for r in indrel_bench::fig3::checkers(budget) {
            println!("  {r}");
        }
        println!();
    }
    if which == "generators" || which == "both" {
        println!("Figure 3 (right): tests/second, handwritten vs derived generators");
        println!("(paper deltas: BST -1.21%, STLC -1.74%)");
        for r in indrel_bench::fig3::generators(budget) {
            println!("  {r}");
        }
    }
}
