//! The observability smoke benchmark: one mixed serving run with a
//! stats probe armed on every worker, exported as an
//! `indrel.metrics/1` snapshot and cross-checked for counter
//! coherence (see `indrel_bench::obs`).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin obs
//! cargo run -p indrel-bench --release --bin obs -- --json [PATH]
//! ```
//!
//! `--json` writes the snapshot as one `indrel.metrics/1` document
//! (default path `BENCH_obs.json`); without it, the Prometheus text
//! exposition is printed. Either way the process exits non-zero if the
//! schema or counter-coherence checks fail — this is the CI gate.
//!
//! Environment: `OBS_REQUESTS` (default 512), `OBS_THREADS`
//! (default 2).

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_obs.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let requests = env_usize("OBS_REQUESTS", 512);
    let threads = env_usize("OBS_THREADS", 2).max(1);
    let (snap, stats) = indrel_bench::obs::run(requests, threads);
    let mut errors = indrel_bench::obs::schema_errors(&snap);
    errors.extend(indrel_bench::obs::coherence_errors(&snap, &stats));
    if let Some(path) = &json_path {
        std::fs::write(path, format!("{}\n", snap.to_json())).expect("write JSON output");
        println!("wrote {path}");
    } else {
        println!(
            "Observability smoke: {requests} requests at {threads} threads\n\n{}",
            snap.to_prometheus()
        );
    }
    if errors.is_empty() {
        println!("schema + coherence: ok");
    } else {
        for e in &errors {
            eprintln!("obs check failed: {e}");
        }
        std::process::exit(1);
    }
}
