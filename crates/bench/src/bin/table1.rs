//! Regenerates Table 1: derived computations from Software Foundations.
//!
//! ```text
//! cargo run -p indrel-bench --release --bin table1            # the table
//! cargo run -p indrel-bench --release --bin table1 -- --detail  # per-relation features and plan stats
//! ```

fn main() {
    if std::env::args().any(|a| a == "--detail") {
        indrel_bench::table1::print_detail();
        return;
    }
    let table = indrel_bench::table1::run();
    println!("{table}");
    println!("Columns: total relations transcribed (incl. higher-order, out of scope),");
    println!("first-order in-scope relations, checkers derived by the full algorithm,");
    println!("checkers derived by the Algorithm 1 baseline (§3 core).");
    println!();
    println!("Note: the corpus is a representative transcription, not the books'");
    println!("full relation count; the claim under test is the shape — the full");
    println!("algorithm covers all first-order relations while Algorithm 1 covers");
    println!("only the core fragment (paper: LF 38/30/11, PLF 71/67/25).");
}
