//! The tabling benchmark: derived-checker corpus sweeps with the memo
//! table on vs off (see `indrel_bench::memo`).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin memo
//! cargo run -p indrel-bench --release --bin memo -- --json [PATH]
//! ```
//!
//! `--json` writes the whole run as one `indrel.bench.memo/1` document
//! (default path `BENCH_memo.json`).
//!
//! Environment: `MEMO_PASSES` (timed sweeps per side, default 15),
//! `MEMO_TREES` (BST corpus size, default 1024 — sweeps of a few
//! milliseconds, so medians resolve single-digit overhead
//! percentages), `MEMO_TERMS` (STLC corpus size, default 200).

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_memo.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let passes = env_usize("MEMO_PASSES", 15);
    let trees = env_usize("MEMO_TREES", 1024);
    let terms = env_usize("MEMO_TERMS", 200);
    let cases = indrel_bench::memo::all_cases(trees, terms, passes);
    if let Some(path) = json_path {
        let doc = indrel_bench::memo::memo_json(&cases, passes);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    println!("Tabling: best-of-{passes} sweep time, memo table off vs on");
    for c in &cases {
        println!("  {c}");
    }
}
