//! The serving benchmark: concurrent sharded-memo sessions at
//! increasing thread counts (see `indrel_bench::serve`).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin serve
//! cargo run -p indrel-bench --release --bin serve -- --json [PATH]
//! ```
//!
//! `--json` writes the whole run as one `indrel.bench.serve/1` document
//! (default path `BENCH_serve.json`).
//!
//! Environment: `SERVE_REQUESTS` (requests per thread count, default
//! 2048), `SERVE_PASSES` (passes per thread count, best wall clock
//! wins, default 3), `SERVE_MAX_THREADS` (top of the 1/2/4/8 doubling
//! ladder, default 8).

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_serve.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let requests = env_usize("SERVE_REQUESTS", 2048);
    let passes = env_usize("SERVE_PASSES", 3);
    let max_threads = env_usize("SERVE_MAX_THREADS", 8).max(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    let cases = indrel_bench::serve::scaling(requests, &threads, passes);
    if let Some(path) = json_path {
        let doc = indrel_bench::serve::serve_json(&cases, passes);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    println!("Serving: {requests} requests per thread count, best of {passes} passes");
    for c in &cases {
        println!("  {c}");
    }
}
