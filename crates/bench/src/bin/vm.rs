//! Compiled-backend comparison: handwritten vs derived-on-closures vs
//! derived-on-VM checker throughput on the Figure 3 workloads.
//!
//! ```text
//! cargo run -p indrel-bench --release --bin vm
//! cargo run -p indrel-bench --release --bin vm -- --json [PATH]
//! ```
//!
//! `--json` writes the comparison as one machine-readable document
//! (schema `indrel.bench.vm/1`, default path `BENCH_vm.json`).
//!
//! Environment: `VM_BUDGET_MS` (wall-clock budget per throughput run,
//! default 1500).

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_vm.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let budget = Duration::from_millis(
        std::env::var("VM_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1500),
    );
    if let Some(path) = json_path {
        let doc = indrel_bench::vm::vm_json(budget);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    println!("Compiled backend: tests/second, checker workloads of Figure 3");
    println!("(ratios are vs handwritten; speedup is VM vs closure tree)");
    for r in indrel_bench::vm::checkers(budget) {
        println!("  {r}");
    }
}
