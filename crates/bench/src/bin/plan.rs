//! Query-planner comparison: static premise schedules vs
//! profile-guided replans, on an adversarial sparse-premise corpus and
//! the Figure 3 non-regression workloads.
//!
//! ```text
//! cargo run -p indrel-bench --release --bin plan
//! cargo run -p indrel-bench --release --bin plan -- --json [PATH]
//! ```
//!
//! `--json` writes the comparison as one machine-readable document
//! (schema `indrel.bench.plan/1`, default path `BENCH_plan.json`).
//!
//! Environment: `PLAN_BUDGET_MS` (wall-clock budget per throughput
//! run, default 1500).

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_plan.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let budget = Duration::from_millis(
        std::env::var("PLAN_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1500),
    );
    if let Some(path) = json_path {
        let doc = indrel_bench::plan::plan_json(budget);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    println!("Query planner: tuples/second, static schedule vs profiled replan");
    println!("(adversarial bar: speedup >= 1.5x; Figure 3 bar: ratio >= 0.95)");
    println!("  {}", indrel_bench::plan::adversarial(budget));
    for r in indrel_bench::plan::fig3_regression(budget) {
        println!("  {r}");
    }
}
