//! Measures parallel-runner scaling on the BST derived-checker
//! workload (see `indrel_bench::par`).
//!
//! ```text
//! cargo run -p indrel-bench --release --bin par_throughput
//! cargo run -p indrel-bench --release --bin par_throughput -- --json [PATH]
//! ```
//!
//! `--json` writes the measurement as one machine-readable document
//! (schema `indrel.bench.par/1`, default path `BENCH_par.json`).
//!
//! Environment: `PAR_TESTS` (test slots per worker count, default
//! 20000), `PAR_WORKERS` (comma-separated worker counts, 0 = off,
//! default `0,1,2,4,8`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = match it.peek() {
                Some(p) if !p.starts_with('-') => it.next().unwrap().clone(),
                _ => "BENCH_par.json".to_string(),
            };
            json_path = Some(path);
        }
    }
    let tests: usize = std::env::var("PAR_TESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let workers: Vec<usize> = std::env::var("PAR_WORKERS")
        .ok()
        .map(|s| s.split(',').filter_map(|w| w.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![0, 1, 2, 4, 8]);
    if let Some(path) = json_path {
        let doc = indrel_bench::par::par_json(tests, &workers);
        std::fs::write(&path, format!("{doc}\n")).expect("write JSON output");
        println!("wrote {path}");
        return;
    }
    let s = indrel_bench::par::bst_scaling(tests, &workers);
    println!("Parallel runner scaling: BST derived checker, {tests} test slots");
    println!("(host cores: {}; speedup is bounded by them)", s.host_cores);
    for c in &s.cases {
        println!("  {c}");
    }
    println!(
        "reports identical across worker counts: {}",
        s.reports_identical
    );
}
