//! Serving benchmark: the concurrent request layer
//! ([`indrel_core::serve`]) driven at increasing worker-thread counts.
//!
//! The workload is the derived BST checker over a fixed corpus of
//! random in-bounds trees with keys in a small range, so queries repeat
//! and the sharded [`SharedMemo`](indrel_core::SharedMemo) earns hits
//! across threads — the serving analogue of the tabling benchmark's
//! speedup cases. Each request is one single-tuple
//! [`Session::check_batch`](indrel_core::Session::check_batch) call
//! (the one-query-per-RPC shape), timed individually, so the benchmark
//! reports both throughput (requests per second of wall clock) and the
//! per-request latency distribution (p50/p99).
//!
//! Every thread count runs the same request list on a fresh server
//! (cold shared table), split round-robin across workers; the reported
//! numbers come from the best-of-`passes` pass by wall clock, the same
//! estimator as the tabling benchmark. On a single-core host the
//! throughput curve is flat (≈1× at every thread count — see
//! `EXPERIMENTS.md`); the latency tail and the memo counters are the
//! portable signal.

use crate::memo::{derived_bst, gen_tree};
use indrel_core::{Budget, MemoStats, ServeConfig, Server, SharedLibrary};
use indrel_producers::json_escape;
use indrel_term::{RelId, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

pub(crate) const BST_FUEL: u64 = 64;
/// Distinct trees in the corpus; requests cycle through it, so smaller
/// values mean more cross-thread memo reuse.
const DISTINCT_TREES: usize = 256;

/// One thread-count measurement.
#[derive(Clone, Debug)]
pub struct ServeCase {
    /// Worker threads driving sessions against the one server.
    pub threads: usize,
    /// Requests served (all threads together).
    pub requests: usize,
    /// Wall milliseconds for the whole run (best pass).
    pub wall_ms: f64,
    /// Median per-request latency, microseconds (best pass).
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds (best pass).
    pub p99_us: f64,
    /// Server counters after the best pass (memo + shed/retries).
    pub stats: MemoStats,
}

impl ServeCase {
    /// Requests per second of wall-clock time.
    pub fn requests_per_second(&self) -> f64 {
        self.requests as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

impl std::fmt::Display for ServeCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "threads {:>2}   {:>9.0} req/s   p50 {:>8.1} us   p99 {:>8.1} us   \
             ({} hits / {} misses)",
            self.threads,
            self.requests_per_second(),
            self.p50_us,
            self.p99_us,
            self.stats.hits,
            self.stats.misses,
        )
    }
}

/// The request corpus: `requests` single-tuple queries cycling through
/// `DISTINCT_TREES` random in-bounds trees (seeded, so every pass and
/// every thread count serves the identical request list).
pub(crate) fn request_corpus(requests: usize) -> (SharedLibrary, RelId, Vec<Vec<Value>>) {
    let (lib, bst, leaf, node) = derived_bst();
    let mut rng = SmallRng::seed_from_u64(21);
    let trees: Vec<Value> = (0..DISTINCT_TREES)
        .map(|_| gen_tree(leaf, node, 0, 16, 6, &mut rng))
        .collect();
    let corpus: Vec<Vec<Value>> = (0..requests)
        .map(|i| {
            vec![
                Value::nat(0),
                Value::nat(16),
                trees[i % trees.len()].clone(),
            ]
        })
        .collect();
    (lib.shared(), bst, corpus)
}

/// One pass: a fresh server (cold shared table), `threads` workers each
/// serving its round-robin share of the corpus, one `check_batch` call
/// per request. Returns the wall milliseconds and how many requests
/// came back decided; per-request latency is not timed here — the
/// serving layer itself records every request into the server's
/// `serve.latency_us` [`Log2Histogram`](indrel_producers::Log2Histogram),
/// which [`scaling`] reads the percentiles from.
fn serve_pass(
    shared: &SharedLibrary,
    rel: RelId,
    corpus: &[Vec<Value>],
    threads: usize,
) -> (Server, f64, usize) {
    let server = Server::new(
        shared.clone(),
        ServeConfig {
            // Sized so the benchmark exercises the fast path: no
            // shedding (capacity over the worker count) and no retries
            // (ample per-request steps for this fuel).
            max_inflight: threads.max(1) * 4,
            steps_per_request: 1_000_000,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let t0 = Instant::now();
    let decided = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    let session = server.session();
                    let mut decided = 0usize;
                    for args in corpus.iter().skip(t).step_by(threads) {
                        let r = session.check_batch(rel, BST_FUEL, std::slice::from_ref(args));
                        if matches!(r[0], Ok(Some(_))) {
                            decided += 1;
                        }
                    }
                    decided
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .sum()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (server, wall_ms, decided)
}

/// Runs the corpus at each thread count, best-of-`passes` by wall
/// clock. Every request must come back decided (`Some` verdict) —
/// the benchmark refuses to time failures.
pub fn scaling(requests: usize, threads: &[usize], passes: usize) -> Vec<ServeCase> {
    let (shared, rel, corpus) = request_corpus(requests);
    // Untimed warm-up fills the type-enumeration caches.
    serve_pass(&shared, rel, &corpus[..corpus.len().min(32)], 1);
    threads
        .iter()
        .map(|&threads| {
            let mut best: Option<ServeCase> = None;
            for _ in 0..passes.max(1) {
                let (server, wall_ms, decided) = serve_pass(&shared, rel, &corpus, threads);
                assert_eq!(decided, corpus.len(), "every request must decide");
                if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
                    let lat = server
                        .snapshot()
                        .histogram("serve.latency_us")
                        .expect("the serving layer records every request's latency")
                        .clone();
                    best = Some(ServeCase {
                        threads,
                        requests: corpus.len(),
                        wall_ms,
                        p50_us: lat.quantile(0.5),
                        p99_us: lat.quantile(0.99),
                        stats: server.stats(),
                    });
                }
            }
            best.expect("at least one pass")
        })
        .collect()
}

fn case_json(c: &ServeCase, base: f64) -> String {
    let rps = c.requests_per_second();
    format!(
        "{{\"threads\":{},\"requests\":{},\"wall_ms\":{:.3},\"req_per_sec\":{:.3},\
         \"speedup_vs_1\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\
         \"memo\":{{\"degraded_shards\":{},\"entries\":{},\"hits\":{},\"misses\":{},\
         \"retries\":{},\"shed\":{}}}}}",
        c.threads,
        c.requests,
        c.wall_ms,
        rps,
        if base > 0.0 { rps / base } else { 0.0 },
        c.p50_us,
        c.p99_us,
        c.stats.degraded_shards,
        c.stats.entries,
        c.stats.hits,
        c.stats.misses,
        c.stats.retries,
        c.stats.shed,
    )
}

/// The whole benchmark as one JSON document (`indrel.bench.serve/1`):
/// per-thread-count throughput, latency percentiles, and serving
/// counters, plus the host core count needed to interpret the speedups.
pub fn serve_json(cases: &[ServeCase], passes: usize) -> String {
    let base = cases.first().map_or(0.0, ServeCase::requests_per_second);
    format!(
        "{{\"schema\":\"indrel.bench.serve/1\",\"workload\":\"{}\",\"fuel\":{BST_FUEL},\
         \"distinct_trees\":{DISTINCT_TREES},\"passes\":{passes},\"host_cores\":{},\
         \"cases\":[{}]}}",
        json_escape("bst-derived-checker-serve"),
        std::thread::available_parallelism().map_or(1, |k| k.get()),
        cases
            .iter()
            .map(|c| case_json(c, base))
            .collect::<Vec<_>>()
            .join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_serves_every_request_and_earns_hits() {
        let cases = scaling(96, &[1, 2], 1);
        assert_eq!(cases.len(), 2);
        for c in &cases {
            assert_eq!(c.requests, 96);
            assert!(c.requests_per_second() > 0.0, "{c}");
            assert!(c.p99_us >= c.p50_us, "{c}");
            assert_eq!(c.stats.degraded_shards, 0, "no chaos in the bench");
            assert_eq!(c.stats.shed, 0, "capacity covers the workers");
        }
        // 96 requests over 256 distinct trees may not repeat; reuse
        // comes from the subgoal level, which both counters see.
        assert!(
            cases.iter().all(|c| c.stats.hits + c.stats.misses > 0),
            "the shared table must be consulted"
        );
    }

    #[test]
    fn serve_json_has_schema_latencies_and_counters() {
        let cases = scaling(64, &[1, 2], 1);
        let j = serve_json(&cases, 1);
        assert!(j.starts_with("{\"schema\":\"indrel.bench.serve/1\""), "{j}");
        for key in [
            "\"threads\":1",
            "\"threads\":2",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"speedup_vs_1\"",
            "\"host_cores\"",
            "\"memo\":{\"degraded_shards\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn latency_percentiles_come_from_the_serve_histogram() {
        let (shared, rel, corpus) = request_corpus(48);
        let (server, _, decided) = serve_pass(&shared, rel, &corpus, 2);
        assert_eq!(decided, corpus.len());
        let snap = server.snapshot();
        let lat = snap
            .histogram("serve.latency_us")
            .expect("serving layer records latency");
        assert_eq!(lat.count, corpus.len() as u64, "one sample per request");
        assert!(lat.quantile(0.99) >= lat.quantile(0.5));
    }
}
