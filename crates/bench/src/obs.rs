//! Observability smoke benchmark: one mixed serving run with every
//! telemetry surface enabled, exported as a metrics snapshot
//! (`indrel.metrics/1`) and cross-checked for counter coherence.
//!
//! This is not a timing benchmark — `probe_overhead` (Criterion) owns
//! the ≤5% unarmed-overhead bar. This harness answers two different
//! questions the CI smoke job asks:
//!
//! 1. **Schema sanity** — the snapshot renders as a well-formed
//!    `indrel.metrics/1` document with the deterministic and
//!    wall-clock sections split.
//! 2. **Counter coherence** — the registry's `memo.*`/`serve.*` series
//!    agree exactly with the [`MemoStats`] the server reports; the two
//!    renderings share one source of truth, so any drift is a bug in
//!    the booking, not the workload.
//!
//! The workload reuses the serving benchmark's BST corpus (seeded, so
//! reruns serve the identical request list) with a [`SearchStats`]
//! probe armed on every worker, so the exported snapshot also carries
//! the per-rule and per-premise attribution series.

use crate::serve::{request_corpus, BST_FUEL};
use indrel_core::{Budget, MemoStats, ServeConfig, Server};
use indrel_producers::{ExecProbe, MetricsSnapshot, SearchStats};

/// One observability run: `requests` single-tuple checks served at
/// `threads` workers, each with a shared stats probe armed. Returns
/// the full metrics snapshot (registry + memo counters + attribution)
/// and the server's [`MemoStats`] for coherence checking.
pub fn run(requests: usize, threads: usize) -> (MetricsSnapshot, MemoStats) {
    let (shared, rel, corpus) = request_corpus(requests);
    let server = Server::new(
        shared,
        ServeConfig {
            max_inflight: threads.max(1) * 4,
            steps_per_request: 1_000_000,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let stats = SearchStats::new();
    std::thread::scope(|scope| {
        for t in 0..threads.max(1) {
            let (server, corpus, stats) = (&server, &corpus, &stats);
            scope.spawn(move || {
                let session = server.session();
                let _probe = session.library().arm_probe(ExecProbe::stats(stats));
                for args in corpus.iter().skip(t).step_by(threads.max(1)) {
                    let r = session.check_batch(rel, BST_FUEL, std::slice::from_ref(args));
                    assert!(
                        matches!(r[0], Ok(Some(_))),
                        "obs workload must decide: {:?}",
                        r[0]
                    );
                }
            });
        }
    });
    (server.snapshot_with_stats(&stats), server.stats())
}

/// Coherence check: every shared counter must appear identically in
/// the metrics snapshot and the [`MemoStats`] rendering. Returns one
/// message per mismatch (empty = coherent).
pub fn coherence_errors(snap: &MetricsSnapshot, stats: &MemoStats) -> Vec<String> {
    let mut errs = Vec::new();
    let counters = [
        ("memo.hits", stats.hits),
        ("memo.misses", stats.misses),
        ("memo.insertions", stats.insertions),
        ("memo.none_skipped", stats.none_skipped),
        ("memo.full_skipped", stats.full_skipped),
        ("serve.shed", stats.shed),
        ("serve.retries", stats.retries),
    ];
    for (name, want) in counters {
        match snap.counter(name) {
            Some(got) if got == want => {}
            got => errs.push(format!("counter {name}: snapshot {got:?} != stats {want}")),
        }
    }
    let gauges = [
        ("memo.entries", stats.entries as u64),
        ("memo.degraded_shards", stats.degraded_shards),
    ];
    for (name, want) in gauges {
        match snap.gauge(name) {
            Some(got) if got == want => {}
            got => errs.push(format!("gauge {name}: snapshot {got:?} != stats {want}")),
        }
    }
    errs
}

/// Schema sanity for the exported document (the CI smoke assertions,
/// callable from tests and the binary alike). Returns one message per
/// violation (empty = sane).
pub fn schema_errors(snap: &MetricsSnapshot) -> Vec<String> {
    let mut errs = Vec::new();
    let json = snap.to_json();
    if !json.starts_with("{\"schema\":\"indrel.metrics/1\"") {
        errs.push(format!(
            "missing schema header: {}",
            &json[..json.len().min(64)]
        ));
    }
    for key in [
        "\"deterministic\":",
        "\"wall_clock\":",
        "serve.requests",
        "serve.latency_us",
    ] {
        if !json.contains(key) {
            errs.push(format!("missing {key} in snapshot"));
        }
    }
    if snap.deterministic_json().contains("latency") {
        errs.push("wall-clock series leaked into the deterministic section".to_string());
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_run_is_coherent_and_schema_clean() {
        let (snap, stats) = run(64, 2);
        assert_eq!(coherence_errors(&snap, &stats), Vec::<String>::new());
        assert_eq!(schema_errors(&snap), Vec::<String>::new());
        assert_eq!(snap.counter("serve.requests"), Some(64));
        assert!(
            snap.counter("rule.bst.1.attempts").unwrap_or(0) > 0
                || snap.counter("rule.bst.0.attempts").unwrap_or(0) > 0,
            "attribution series present:\n{snap}"
        );
        assert!(snap.histogram("serve.latency_us").unwrap().count >= 64);
    }
}
