//! The §6.3 reflection experiment: `Sorted (repeat 1 n)` at the
//! paper's `n = 2000` (and neighbours, to expose the quadratic kernel
//! cost vs the linear reflective cost).

use indrel_reflect::ReflectionReport;
use std::fmt;

/// Paper timings for n = 2000 (§6.3), in seconds: construction,
/// typechecking, reflective construction, reflective checking.
pub const PAPER_SECONDS: (f64, f64, f64, f64) = (11.202, 16.283, 0.05, 0.059);

/// Runs the experiment at each length (on a large-stack worker
/// thread: the naive route recurses once per element).
pub fn run(lengths: &[u64]) -> Vec<ReflectionReport> {
    indrel_reflect::compare_with_big_stack(lengths)
}

/// Renders one report row.
pub struct DisplayReport(pub ReflectionReport);

impl fmt::Display for DisplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = &self.0;
        write!(
            f,
            "n={:<6} proof nodes {:<7} construct {:>10.3?}  kernel-check {:>10.3?}  reflective {:>10.3?}  speedup {:>7.1}x",
            r.n,
            r.proof_size,
            r.construct,
            r.kernel_check,
            r.reflective,
            r.speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflection_wins_at_both_scales() {
        // Keep the assertions timing-robust (debug builds under a
        // parallel test runner are noisy): reflection must win at both
        // lengths, and the kernel cost must grow with n. The
        // quadratic-vs-linear *trend* is reported by the binary and the
        // Criterion bench, where measurements are controlled.
        let reports = run(&[200, 800]);
        assert!(reports[0].speedup() > 1.0, "{reports:?}");
        assert!(reports[1].speedup() > 1.0, "{reports:?}");
        assert!(
            reports[1].kernel_check > reports[0].kernel_check,
            "{reports:?}"
        );
    }
}
