//! Programmatic construction of rules.

use crate::relation::{Premise, Rule};
use indrel_term::{RelId, TermExpr, TypeExpr, VarId};
use std::collections::HashMap;

/// A non-consuming builder for [`Rule`]s ([C-BUILDER]).
///
/// Variables are introduced by name on first use through
/// [`RuleBuilder::var`]; premises are added in order; the terminal method
/// [`RuleBuilder::conclusion`] produces the rule.
///
/// # Example
///
/// ```
/// use indrel_rel::RuleBuilder;
/// use indrel_term::{RelId, TermExpr, TypeExpr};
///
/// let le = RelId::new(0);
/// let mut b = RuleBuilder::new("le_S");
/// let n = b.var("n", TypeExpr::Nat);
/// let m = b.var("m", TypeExpr::Nat);
/// b.premise_rel(le, vec![TermExpr::Var(n), TermExpr::Var(m)]);
/// let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::succ(TermExpr::Var(m))]);
/// assert_eq!(rule.name(), "le_S");
/// assert_eq!(rule.num_vars(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    name: String,
    var_names: Vec<String>,
    var_types: Vec<Option<TypeExpr>>,
    by_name: HashMap<String, VarId>,
    premises: Vec<Premise>,
}

impl RuleBuilder {
    /// Starts building a rule with the given constructor name.
    pub fn new(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            name: name.into(),
            var_names: Vec::new(),
            var_types: Vec::new(),
            by_name: HashMap::new(),
            premises: Vec::new(),
        }
    }

    /// Introduces (or looks up) a variable with a type annotation.
    pub fn var(&mut self, name: &str, ty: TypeExpr) -> VarId {
        self.var_inner(name, Some(ty))
    }

    /// Introduces (or looks up) a variable whose type will be inferred.
    pub fn var_untyped(&mut self, name: &str) -> VarId {
        self.var_inner(name, None)
    }

    fn var_inner(&mut self, name: &str, ty: Option<TypeExpr>) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            if let (Some(t), None) = (&ty, &self.var_types[id.index()]) {
                self.var_types[id.index()] = Some(t.clone());
            }
            return id;
        }
        let id = VarId::new(self.var_names.len());
        self.var_names.push(name.to_string());
        self.var_types.push(ty);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a positive relation premise `Q e₁ … eₙ`.
    pub fn premise_rel(&mut self, rel: RelId, args: Vec<TermExpr>) -> &mut Self {
        self.premises.push(Premise::Rel {
            rel,
            args,
            negated: false,
        });
        self
    }

    /// Adds a negated relation premise `¬ (Q e₁ … eₙ)`.
    pub fn premise_not_rel(&mut self, rel: RelId, args: Vec<TermExpr>) -> &mut Self {
        self.premises.push(Premise::Rel {
            rel,
            args,
            negated: true,
        });
        self
    }

    /// Adds an equality premise `e₁ = e₂`.
    pub fn premise_eq(&mut self, lhs: TermExpr, rhs: TermExpr) -> &mut Self {
        self.premises.push(Premise::Eq {
            lhs,
            rhs,
            negated: false,
        });
        self
    }

    /// Adds a disequality premise `e₁ ≠ e₂`.
    pub fn premise_neq(&mut self, lhs: TermExpr, rhs: TermExpr) -> &mut Self {
        self.premises.push(Premise::Eq {
            lhs,
            rhs,
            negated: true,
        });
        self
    }

    /// Finishes the rule with the conclusion's argument expressions.
    pub fn conclusion(&self, args: Vec<TermExpr>) -> Rule {
        Rule::new(
            self.name.clone(),
            self.var_names.clone(),
            self.var_types.clone(),
            self.premises.clone(),
            args,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_deduplicate_by_name() {
        let mut b = RuleBuilder::new("r");
        let x1 = b.var_untyped("x");
        let x2 = b.var("x", TypeExpr::Nat);
        assert_eq!(x1, x2);
        let rule = b.conclusion(vec![TermExpr::Var(x1)]);
        assert_eq!(rule.num_vars(), 1);
        // annotation supplied on second use sticks
        assert_eq!(rule.var_types()[0], Some(TypeExpr::Nat));
    }

    #[test]
    fn premises_accumulate_in_order() {
        let q = RelId::new(3);
        let mut b = RuleBuilder::new("r");
        let x = b.var("x", TypeExpr::Nat);
        b.premise_eq(TermExpr::Var(x), TermExpr::NatLit(0));
        b.premise_not_rel(q, vec![TermExpr::Var(x)]);
        b.premise_neq(TermExpr::Var(x), TermExpr::NatLit(1));
        let rule = b.conclusion(vec![TermExpr::Var(x)]);
        assert_eq!(rule.premises().len(), 3);
        assert!(!rule.premises()[0].is_negated());
        assert!(rule.premises()[1].is_negated());
        assert!(rule.premises()[2].is_negated());
    }
}
