//! Relations, rules, and premises.

use indrel_term::{RelId, TermExpr, TypeExpr, Universe, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A premise of a rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Premise {
    /// An application of an inductive relation, `Q e₁ … eₙ`, or its
    /// negation `¬ (Q e₁ … eₙ)`.
    Rel {
        /// The relation applied.
        rel: RelId,
        /// Argument expressions.
        args: Vec<TermExpr>,
        /// `true` for a negated premise.
        negated: bool,
    },
    /// A (dis)equality between two terms, `e₁ = e₂` or `e₁ ≠ e₂`.
    ///
    /// Equalities arise both in source programs and from the
    /// preprocessing of non-linear patterns and function calls (§3.1).
    Eq {
        /// Left-hand side.
        lhs: TermExpr,
        /// Right-hand side.
        rhs: TermExpr,
        /// `true` for a disequality.
        negated: bool,
    },
}

impl Premise {
    /// All variables occurring in the premise.
    pub fn variables(&self) -> std::collections::BTreeSet<VarId> {
        let mut out = std::collections::BTreeSet::new();
        match self {
            Premise::Rel { args, .. } => {
                for a in args {
                    out.extend(a.variables());
                }
            }
            Premise::Eq { lhs, rhs, .. } => {
                out.extend(lhs.variables());
                out.extend(rhs.variables());
            }
        }
        out
    }

    /// `true` when the premise is negated.
    pub fn is_negated(&self) -> bool {
        match self {
            Premise::Rel { negated, .. } | Premise::Eq { negated, .. } => *negated,
        }
    }
}

/// A rule (constructor) of an inductive relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    name: String,
    var_names: Vec<String>,
    var_types: Vec<Option<TypeExpr>>,
    premises: Vec<Premise>,
    conclusion: Vec<TermExpr>,
}

impl Rule {
    /// Creates a rule. Prefer [`crate::RuleBuilder`] or the parser.
    pub fn new(
        name: impl Into<String>,
        var_names: Vec<String>,
        var_types: Vec<Option<TypeExpr>>,
        premises: Vec<Premise>,
        conclusion: Vec<TermExpr>,
    ) -> Rule {
        Rule {
            name: name.into(),
            var_names,
            var_types,
            premises,
            conclusion,
        }
    }

    /// Rule (constructor) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of universally quantified variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Variable names, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Inferred or annotated variable types, indexed by [`VarId`].
    pub fn var_types(&self) -> &[Option<TypeExpr>] {
        &self.var_types
    }

    /// Premises in source order.
    pub fn premises(&self) -> &[Premise] {
        &self.premises
    }

    /// The argument expressions of the conclusion `P e₁ … eₙ`.
    pub fn conclusion(&self) -> &[TermExpr] {
        &self.conclusion
    }

    /// `true` when the rule has a premise on the relation `rel` itself
    /// (i.e. the constructor is recursive).
    pub fn is_recursive(&self, rel: RelId) -> bool {
        self.premises.iter().any(|p| match p {
            Premise::Rel { rel: q, .. } => *q == rel,
            Premise::Eq { .. } => false,
        })
    }

    /// Variables appearing in premises but not in the conclusion — the
    /// *existentially quantified* variables of §3.1.
    pub fn existential_vars(&self) -> Vec<VarId> {
        let mut concl: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
        for e in &self.conclusion {
            concl.extend(e.variables());
        }
        let mut out = Vec::new();
        for p in &self.premises {
            for v in p.variables() {
                if !concl.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    pub(crate) fn set_var_type(&mut self, var: VarId, ty: TypeExpr) {
        self.var_types[var.index()] = Some(ty);
    }

    pub(crate) fn add_var(&mut self, name: String, ty: Option<TypeExpr>) -> VarId {
        let id = VarId::new(self.var_names.len());
        self.var_names.push(name);
        self.var_types.push(ty);
        id
    }

    pub(crate) fn premises_mut(&mut self) -> &mut Vec<Premise> {
        &mut self.premises
    }

    pub(crate) fn conclusion_mut(&mut self) -> &mut Vec<TermExpr> {
        &mut self.conclusion
    }
}

/// An inductive relation: a name, argument types, and rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    name: String,
    arg_types: Vec<TypeExpr>,
    rules: Vec<Rule>,
}

impl Relation {
    /// Creates a relation.
    pub fn new(name: impl Into<String>, arg_types: Vec<TypeExpr>, rules: Vec<Rule>) -> Relation {
        Relation {
            name: name.into(),
            arg_types,
            rules,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Argument types `T₁ … Tₙ` of `P : T₁ → ⋯ → Tₙ → Prop`.
    pub fn arg_types(&self) -> &[TypeExpr] {
        &self.arg_types
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }

    /// Rules in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub(crate) fn rules_mut(&mut self) -> &mut Vec<Rule> {
        &mut self.rules
    }
}

/// Error raised when registering relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelEnvError {
    /// A relation with this name already exists.
    DuplicateRelation(String),
}

impl fmt::Display for RelEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelEnvError::DuplicateRelation(n) => write!(f, "duplicate relation `{n}`"),
        }
    }
}

impl Error for RelEnvError {}

/// The registry of inductive relations, owning the [`RelId`] space.
#[derive(Clone, Debug, Default)]
pub struct RelEnv {
    rels: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl RelEnv {
    /// Creates an empty environment.
    pub fn new() -> RelEnv {
        RelEnv::default()
    }

    /// Registers a relation.
    ///
    /// # Errors
    ///
    /// Returns [`RelEnvError::DuplicateRelation`] if the name is taken.
    pub fn declare(&mut self, relation: Relation) -> Result<RelId, RelEnvError> {
        if self.by_name.contains_key(relation.name()) {
            return Err(RelEnvError::DuplicateRelation(relation.name().to_string()));
        }
        let id = RelId::new(self.rels.len());
        self.by_name.insert(relation.name().to_string(), id);
        self.rels.push(relation);
        Ok(id)
    }

    /// Reserves an id for a relation being parsed, so rules can refer to
    /// the relation itself.
    pub(crate) fn reserve(
        &mut self,
        name: &str,
        arg_types: Vec<TypeExpr>,
    ) -> Result<RelId, RelEnvError> {
        self.declare(Relation::new(name, arg_types, Vec::new()))
    }

    pub(crate) fn relation_mut(&mut self, rel: RelId) -> &mut Relation {
        &mut self.rels[rel.index()]
    }

    /// Looks up a relation.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this environment.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.rels[rel.index()]
    }

    /// Resolves a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// `true` when no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId::new(i), r))
    }

    /// Renders a rule in roughly the surface syntax, for diagnostics.
    pub fn display_rule<'a>(
        &'a self,
        universe: &'a Universe,
        rel: RelId,
        rule: &'a Rule,
    ) -> DisplayRule<'a> {
        DisplayRule {
            env: self,
            universe,
            rel,
            rule,
        }
    }
}

/// Helper returned by [`RelEnv::display_rule`].
#[derive(Debug)]
pub struct DisplayRule<'a> {
    env: &'a RelEnv,
    universe: &'a Universe,
    rel: RelId,
    rule: &'a Rule,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.rule.var_names();
        write!(f, "{} :", self.rule.name())?;
        if !names.is_empty() {
            write!(f, " forall")?;
            for n in names {
                write!(f, " {n}")?;
            }
            write!(f, ",")?;
        }
        for p in self.rule.premises() {
            match p {
                Premise::Rel { rel, args, negated } => {
                    write!(f, " ")?;
                    if *negated {
                        write!(f, "~ ")?;
                    }
                    write!(f, "{}", self.env.relation(*rel).name())?;
                    for a in args {
                        write!(f, " {}", ParenExpr(a, self.universe, names))?;
                    }
                }
                Premise::Eq { lhs, rhs, negated } => {
                    write!(
                        f,
                        " {} {} {}",
                        lhs.display(self.universe, names),
                        if *negated { "<>" } else { "=" },
                        rhs.display(self.universe, names)
                    )?;
                }
            }
            write!(f, " ->")?;
        }
        write!(f, " {}", self.env.relation(self.rel).name())?;
        for a in self.rule.conclusion() {
            write!(f, " {}", ParenExpr(a, self.universe, names))?;
        }
        Ok(())
    }
}

struct ParenExpr<'a>(&'a TermExpr, &'a Universe, &'a [String]);

impl fmt::Display for ParenExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atomic = matches!(
            self.0,
            TermExpr::Var(_) | TermExpr::NatLit(_) | TermExpr::BoolLit(_)
        ) || matches!(self.0, TermExpr::Ctor(_, args) if args.is_empty());
        if atomic {
            write!(f, "{}", self.0.display(self.1, self.2))
        } else {
            write!(f, "({})", self.0.display(self.1, self.2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le_relation(env: &mut RelEnv) -> RelId {
        // le : nat -> nat -> Prop
        let le = env
            .reserve("le", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let le_n = Rule::new(
            "le_n",
            vec!["n".into()],
            vec![Some(TypeExpr::Nat)],
            vec![],
            vec![TermExpr::var(0), TermExpr::var(0)],
        );
        let le_s = Rule::new(
            "le_S",
            vec!["n".into(), "m".into()],
            vec![Some(TypeExpr::Nat), Some(TypeExpr::Nat)],
            vec![Premise::Rel {
                rel: le,
                args: vec![TermExpr::var(0), TermExpr::var(1)],
                negated: false,
            }],
            vec![TermExpr::var(0), TermExpr::succ(TermExpr::var(1))],
        );
        env.relation_mut(le).rules_mut().extend([le_n, le_s]);
        le
    }

    #[test]
    fn declare_and_query() {
        let mut env = RelEnv::new();
        let le = le_relation(&mut env);
        assert_eq!(env.relation(le).name(), "le");
        assert_eq!(env.relation(le).arity(), 2);
        assert_eq!(env.rel_id("le"), Some(le));
        assert!(env.relation(le).rules()[1].is_recursive(le));
        assert!(!env.relation(le).rules()[0].is_recursive(le));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut env = RelEnv::new();
        le_relation(&mut env);
        assert!(env.reserve("le", vec![]).is_err());
    }

    #[test]
    fn existential_vars_detected() {
        let mut env = RelEnv::new();
        let le = le_relation(&mut env);
        // between : n <= m -> m <= p -> between n p   (m is existential)
        let rule = Rule::new(
            "between",
            vec!["n".into(), "m".into(), "p".into()],
            vec![Some(TypeExpr::Nat); 3],
            vec![
                Premise::Rel {
                    rel: le,
                    args: vec![TermExpr::var(0), TermExpr::var(1)],
                    negated: false,
                },
                Premise::Rel {
                    rel: le,
                    args: vec![TermExpr::var(1), TermExpr::var(2)],
                    negated: false,
                },
            ],
            vec![TermExpr::var(0), TermExpr::var(2)],
        );
        assert_eq!(rule.existential_vars(), vec![VarId::new(1)]);
        assert!(rule.premises()[0].variables().contains(&VarId::new(0)));
        assert!(!rule.premises()[0].is_negated());
    }

    #[test]
    fn display_rule_round_trips_syntax() {
        let mut env = RelEnv::new();
        let le = le_relation(&mut env);
        let u = Universe::new();
        let shown = env
            .display_rule(&u, le, &env.relation(le).rules()[1])
            .to_string();
        assert_eq!(shown, "le_S : forall n m, le n m -> le n (S m)");
    }
}
