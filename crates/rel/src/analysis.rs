//! Syntactic feature analysis of relations.
//!
//! The evaluation of the paper (Table 1) compares the fully general
//! derivation against the restricted core of §3 ("Algorithm 1"): rule
//! conclusions must be *linear constructor terms*, every universally
//! quantified variable must be bound in the conclusion (no existential
//! quantification), and premises must be positive relation applications.
//! This module classifies a relation along those axes.

use crate::relation::{Premise, Relation};
use indrel_term::{TermExpr, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// The features of a relation that fall outside the restricted core
/// grammar of Algorithm 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Features {
    /// Some rule repeats a variable in its conclusion.
    pub nonlinear_conclusion: bool,
    /// Some rule conclusion contains a function call.
    pub funcall_in_conclusion: bool,
    /// Some rule has variables that appear only in premises.
    pub existentials: bool,
    /// Some rule has a negated premise.
    pub negated_premises: bool,
    /// Some rule has a source-level (dis)equality premise.
    pub eq_premises: bool,
}

impl Features {
    /// `true` when the relation is inside the restricted core grammar of
    /// §3, so the baseline Algorithm 1 can derive its checker.
    pub fn algorithm1_ok(&self) -> bool {
        !(self.nonlinear_conclusion
            || self.funcall_in_conclusion
            || self.existentials
            || self.negated_premises
            || self.eq_premises)
    }
}

impl fmt::Display for Features {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.nonlinear_conclusion {
            parts.push("non-linear");
        }
        if self.funcall_in_conclusion {
            parts.push("function-calls");
        }
        if self.existentials {
            parts.push("existentials");
        }
        if self.negated_premises {
            parts.push("negation");
        }
        if self.eq_premises {
            parts.push("equalities");
        }
        if parts.is_empty() {
            write!(f, "core")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// Computes the features of a relation.
pub fn features(relation: &Relation) -> Features {
    let mut out = Features::default();
    for rule in relation.rules() {
        let mut occurrences: Vec<VarId> = Vec::new();
        for e in rule.conclusion() {
            occurrences.extend(e.occurrences());
            if contains_funcall(e) {
                out.funcall_in_conclusion = true;
            }
        }
        let mut set: BTreeSet<VarId> = BTreeSet::new();
        for v in &occurrences {
            if !set.insert(*v) {
                out.nonlinear_conclusion = true;
            }
        }
        if !rule.existential_vars().is_empty() {
            out.existentials = true;
        }
        for p in rule.premises() {
            match p {
                Premise::Rel { negated, .. } => {
                    if *negated {
                        out.negated_premises = true;
                    }
                }
                Premise::Eq { .. } => out.eq_premises = true,
            }
        }
    }
    out
}

fn contains_funcall(e: &TermExpr) -> bool {
    match e {
        TermExpr::Var(_) | TermExpr::NatLit(_) | TermExpr::BoolLit(_) => false,
        TermExpr::Succ(inner) => contains_funcall(inner),
        TermExpr::Ctor(_, args) => args.iter().any(contains_funcall),
        TermExpr::Fun(_, _) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelEnv;
    use crate::RuleBuilder;
    use indrel_term::TypeExpr;

    #[test]
    fn core_relation_is_algorithm1_ok() {
        let mut env = RelEnv::new();
        let le = env
            .reserve("le", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("le_S");
        let n = b.var("n", TypeExpr::Nat);
        let m = b.var("m", TypeExpr::Nat);
        b.premise_rel(le, vec![TermExpr::Var(n), TermExpr::Var(m)]);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::succ(TermExpr::Var(m))]);
        env.relation_mut(le).rules_mut().push(rule);
        let f = features(env.relation(le));
        assert!(f.algorithm1_ok());
        assert_eq!(f.to_string(), "core");
    }

    #[test]
    fn detects_each_feature() {
        let mut env = RelEnv::new();
        let q = env.reserve("q", vec![TypeExpr::Nat]).unwrap();
        let r = env
            .reserve("r", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();

        // non-linear conclusion
        let mut b = RuleBuilder::new("c1");
        let n = b.var("n", TypeExpr::Nat);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(n)]);
        env.relation_mut(r).rules_mut().push(rule);
        assert!(features(env.relation(r)).nonlinear_conclusion);

        // existential
        let mut b = RuleBuilder::new("c2");
        let n = b.var("n", TypeExpr::Nat);
        let m = b.var("m", TypeExpr::Nat);
        let x = b.var("x", TypeExpr::Nat);
        b.premise_rel(q, vec![TermExpr::Var(x)]);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(m)]);
        let rel2 =
            crate::relation::Relation::new("r2", vec![TypeExpr::Nat, TypeExpr::Nat], vec![rule]);
        let f = features(&rel2);
        assert!(f.existentials);
        assert!(!f.algorithm1_ok());
        assert!(f.to_string().contains("existentials"));

        // negation + equality
        let mut b = RuleBuilder::new("c3");
        let n = b.var("n", TypeExpr::Nat);
        b.premise_not_rel(q, vec![TermExpr::Var(n)]);
        b.premise_eq(TermExpr::Var(n), TermExpr::NatLit(0));
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(n)]);
        let rel3 =
            crate::relation::Relation::new("r3", vec![TypeExpr::Nat, TypeExpr::Nat], vec![rule]);
        let f = features(&rel3);
        assert!(f.negated_premises);
        assert!(f.eq_premises);
        assert!(f.nonlinear_conclusion);
    }
}
