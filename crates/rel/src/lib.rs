//! Inductive relation definitions.
//!
//! This crate defines the specification language of the framework: an
//! inductive relation is a list of *rules* (constructors in Coq
//! terminology), each with universally quantified variables, a list of
//! premises, and a conclusion `P e₁ … eₙ` — the grammar of §1/§3 of
//! *Computing Correctly with Inductive Relations* (PLDI 2022):
//!
//! ```text
//! Inductive P (A… : Type) : T₁ → ⋯ → Prop :=
//! | C₁ : ∀ x₁…, (Q₁ e₁₁ …) → ⋯ → P e₁ … eₙ | …
//! ```
//!
//! Premises are relation applications (possibly negated) or (dis)equalities
//! between terms; conclusions are term expressions, possibly with
//! non-linear variables and function calls, which the [`preprocess`]
//! module rewrites into equality premises exactly as §3.1 describes.
//!
//! Relations can be written programmatically with [`RuleBuilder`] or,
//! more conveniently, in a Coq-flavoured surface syntax via [`parse`]:
//!
//! ```
//! use indrel_term::Universe;
//! use indrel_rel::{RelEnv, parse::parse_program};
//!
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, r"
//!     rel le : nat nat :=
//!     | le_n : forall n, le n n
//!     | le_S : forall n m, le n m -> le n (S m)
//!     .
//! ").unwrap();
//! let le = env.rel_id("le").unwrap();
//! assert_eq!(env.relation(le).rules().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod infer;
pub mod parse;
pub mod preprocess;
pub mod pretty;
pub mod relation;

pub use builder::RuleBuilder;
pub use relation::{Premise, RelEnv, Relation, Rule};
