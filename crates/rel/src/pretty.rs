//! Pretty-printing declarations back to parseable surface syntax.
//!
//! [`RelEnv::display_rule`](crate::RelEnv::display_rule) renders rules
//! *roughly* — it drops binder type annotations and knows nothing about
//! datatype declarations or declaration order. This module is the
//! complete counterpart: [`pretty_program`] emits a program that
//! [`crate::parse::parse_program`] accepts and that parses back to
//! structurally equal declarations — including negated premises,
//! existential binders with their inferred types, and mutually
//! recursive relations (grouped into `mutual … end` blocks).
//!
//! ```
//! use indrel_rel::{parse::parse_program, pretty::pretty_program, RelEnv};
//! use indrel_term::Universe;
//!
//! let src = r"rel le : nat nat :=
//!     | le_n : forall n, le n n
//!     | le_S : forall n m, le n m -> le n (S m)
//!     .";
//! let mut u = Universe::new();
//! let mut env = RelEnv::new();
//! parse_program(&mut u, &mut env, src).unwrap();
//! let le = env.rel_id("le").unwrap();
//! let text = pretty_program(&u, &env, &[], &[le]);
//!
//! let mut u2 = Universe::new();
//! let mut env2 = RelEnv::new();
//! parse_program(&mut u2, &mut env2, &text).unwrap();
//! let le2 = env2.rel_id("le").unwrap();
//! assert_eq!(env.relation(le), env2.relation(le2));
//! ```

use crate::relation::{Premise, RelEnv, Rule};
use indrel_term::{DtId, RelId, TermExpr, TypeExpr, Universe};
use std::fmt::Write;

/// Renders a type for an *atom* position (relation signatures, binder
/// annotations live behind their own `:` so the head form is fine
/// there; constructor argument lists need parens around applied types).
fn atom_type(universe: &Universe, ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::App(_, args) if !args.is_empty() => format!("({})", ty.display(universe)),
        _ => ty.display(universe).to_string(),
    }
}

/// Renders a term for an atom position: non-atomic terms (successors,
/// constructor or function applications with arguments) get parens.
fn atom_term(universe: &Universe, names: &[String], e: &TermExpr) -> String {
    let atomic = matches!(
        e,
        TermExpr::Var(_) | TermExpr::NatLit(_) | TermExpr::BoolLit(_)
    ) || matches!(e, TermExpr::Ctor(_, args) if args.is_empty())
        || matches!(e, TermExpr::Fun(_, args) if args.is_empty());
    if atomic {
        e.display(universe, names).to_string()
    } else {
        format!("({})", e.display(universe, names))
    }
}

/// Emits one `data` declaration.
///
/// # Panics
///
/// Panics if the datatype has no constructors — such a declaration has
/// no parseable rendering (the grammar requires at least one
/// constructor after `:=`).
pub fn pretty_datatype(universe: &Universe, dt: DtId) -> String {
    let decl = universe.datatype(dt);
    assert!(
        !decl.ctors().is_empty(),
        "datatype `{}` has no constructors and cannot be rendered",
        decl.name()
    );
    let mut out = String::new();
    write!(out, "data {}", decl.name()).expect("write to string");
    for i in 0..decl.nparams() {
        // Mirrors the `'a`…`'z` naming used by `TypeExpr::display`.
        write!(out, " '{}", (b'a' + (i as u8 % 26)) as char).expect("write to string");
    }
    out.push_str(" :=");
    for (i, &c) in decl.ctors().iter().enumerate() {
        let ctor = universe.ctor(c);
        if i > 0 {
            out.push_str(" |");
        }
        write!(out, " {}", ctor.name()).expect("write to string");
        for ty in ctor.arg_types() {
            write!(out, " {}", atom_type(universe, ty)).expect("write to string");
        }
    }
    out.push_str(" .\n");
    out
}

fn pretty_rule(universe: &Universe, env: &RelEnv, rel: RelId, rule: &Rule, out: &mut String) {
    let names = rule.var_names();
    write!(out, "| {} :", rule.name()).expect("write to string");
    if !names.is_empty() {
        out.push_str(" forall");
        for (name, ty) in names.iter().zip(rule.var_types()) {
            match ty {
                Some(ty) => write!(out, " ({name} : {})", ty.display(universe)),
                None => write!(out, " {name}"),
            }
            .expect("write to string");
        }
        out.push(',');
    }
    for p in rule.premises() {
        out.push(' ');
        match p {
            Premise::Rel {
                rel: q,
                args,
                negated,
            } => {
                if *negated {
                    out.push_str("~ ");
                }
                out.push_str(env.relation(*q).name());
                for a in args {
                    write!(out, " {}", atom_term(universe, names, a)).expect("write to string");
                }
            }
            Premise::Eq { lhs, rhs, negated } => {
                write!(
                    out,
                    "{} {} {}",
                    lhs.display(universe, names),
                    if *negated { "<>" } else { "=" },
                    rhs.display(universe, names)
                )
                .expect("write to string");
            }
        }
        out.push_str(" ->");
    }
    write!(out, " {}", env.relation(rel).name()).expect("write to string");
    for a in rule.conclusion() {
        write!(out, " {}", atom_term(universe, names, a)).expect("write to string");
    }
    out.push('\n');
}

/// Emits one `rel` declaration (without any `mutual` wrapper).
pub fn pretty_relation(universe: &Universe, env: &RelEnv, rel: RelId) -> String {
    let r = env.relation(rel);
    let mut out = String::new();
    write!(out, "rel {} :", r.name()).expect("write to string");
    for ty in r.arg_types() {
        write!(out, " {}", atom_type(universe, ty)).expect("write to string");
    }
    out.push_str(" :=\n");
    for rule in r.rules() {
        pretty_rule(universe, env, rel, rule, &mut out);
    }
    out.push_str(".\n");
    out
}

/// Emits a parseable program declaring `datatypes` then `relations`, in
/// the given order. Relations that reference a *later* relation in the
/// slice (directly or through a chain of forward references) are
/// grouped with it into a single `mutual … end` block; everything else
/// is emitted as a plain declaration.
///
/// The rendering assumes any datatype, function, or relation *not*
/// listed here is pre-registered in the universe/environment the text
/// will be parsed into (as [`crate::parse::std_universe`] does for the
/// standard library).
pub fn pretty_program(
    universe: &Universe,
    env: &RelEnv,
    datatypes: &[DtId],
    relations: &[RelId],
) -> String {
    let mut out = String::new();
    for &dt in datatypes {
        out.push_str(&pretty_datatype(universe, dt));
    }
    // Interval merging: a premise referencing relations[j] from
    // relations[i] with j > i forces i..=j into one mutual block
    // (declaration order is preserved, so only forward edges matter).
    let pos = |id: RelId| relations.iter().position(|&r| r == id);
    let mut reach: Vec<usize> = (0..relations.len()).collect();
    for (i, &rel) in relations.iter().enumerate() {
        for rule in env.relation(rel).rules() {
            for p in rule.premises() {
                if let Premise::Rel { rel: q, .. } = p {
                    if let Some(j) = pos(*q) {
                        reach[i] = reach[i].max(j);
                    }
                }
            }
        }
    }
    let mut i = 0;
    while i < relations.len() {
        // Extend the block while any member reaches past its end.
        let mut end = reach[i];
        let mut j = i;
        while j <= end {
            end = end.max(reach[j]);
            j += 1;
        }
        if end == i {
            out.push_str(&pretty_relation(universe, env, relations[i]));
        } else {
            out.push_str("mutual\n");
            for &rel in &relations[i..=end] {
                out.push_str(&pretty_relation(universe, env, rel));
            }
            out.push_str("end\n");
        }
        i = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_program, std_universe};

    fn roundtrip(src: &str) {
        let mut u = std_universe();
        let mut env = RelEnv::new();
        let out = parse_program(&mut u, &mut env, src).unwrap();
        let dts: Vec<DtId> = out
            .datatypes
            .iter()
            .map(|n| u.dt_id(n).expect("declared"))
            .collect();
        let rels: Vec<RelId> = out
            .relations
            .iter()
            .map(|n| env.rel_id(n).expect("declared"))
            .collect();
        let text = pretty_program(&u, &env, &dts, &rels);

        let mut u2 = std_universe();
        let mut env2 = RelEnv::new();
        let out2 = parse_program(&mut u2, &mut env2, &text).unwrap_or_else(|e| {
            panic!("pretty output failed to parse: {e}\n{text}");
        });
        assert_eq!(out.datatypes, out2.datatypes, "{text}");
        assert_eq!(out.relations, out2.relations, "{text}");
        for name in &out.relations {
            let a = env.relation(env.rel_id(name).unwrap());
            let b = env2.relation(env2.rel_id(name).unwrap());
            assert_eq!(a, b, "relation `{name}` changed across roundtrip:\n{text}");
        }
    }

    #[test]
    fn roundtrips_datatypes_and_annotations() {
        roundtrip(
            r"
            data tree := Leaf | Node nat tree tree .
            rel bst : nat nat tree :=
            | bst_leaf : forall (lo : nat) (hi : nat), bst lo hi Leaf
            | bst_node : forall lo hi x l r,
                bst lo x l -> bst x hi r -> bst lo hi (Node x l r)
            .
            ",
        );
    }

    #[test]
    fn roundtrips_negation_equalities_and_functions() {
        roundtrip(
            r"
            rel even' : nat :=
            | even_0 : even' 0
            | even_SS : forall n, even' n -> even' (S (S n))
            .
            rel weird : nat nat :=
            | w : forall n m,
                ~ (even' n) -> plus n 1 = m -> n <> 4 -> weird n m
            .
            ",
        );
    }

    #[test]
    fn roundtrips_existentials_and_parameterized_types() {
        roundtrip(
            r"
            rel in_list : nat (list nat) :=
            | in_here : forall x l, in_list x (cons x l)
            | in_there : forall x y l, in_list x l -> in_list x (cons y l)
            .
            rel nonempty : (list nat) :=
            | ne : forall x l, in_list x l -> nonempty l
            .
            ",
        );
    }

    #[test]
    fn forward_references_render_as_mutual_block() {
        let mut u = std_universe();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            mutual
            rel even2 : nat :=
            | e0 : even2 0
            | eS : forall n, odd2 n -> even2 (S n)
            .
            rel odd2 : nat :=
            | oS : forall n, even2 n -> odd2 (S n)
            .
            end
            ",
        )
        .unwrap();
        let rels = vec![env.rel_id("even2").unwrap(), env.rel_id("odd2").unwrap()];
        let text = pretty_program(&u, &env, &[], &rels);
        assert!(text.starts_with("mutual\n"), "{text}");
        assert!(text.contains("end\n"), "{text}");
        let mut u2 = std_universe();
        let mut env2 = RelEnv::new();
        parse_program(&mut u2, &mut env2, &text).unwrap();
        for (name, &rel) in ["even2", "odd2"].iter().zip(&rels) {
            assert_eq!(
                env.relation(rel),
                env2.relation(env2.rel_id(name).unwrap()),
                "{text}"
            );
        }
    }
}
