//! Surface syntax for datatypes and inductive relations.
//!
//! The syntax is deliberately close to Coq's, so that relations from the
//! Software Foundations corpus can be transcribed almost verbatim:
//!
//! ```text
//! data tree := Leaf | Node nat tree tree .
//!
//! rel bst : nat nat tree :=
//! | bst_leaf : forall lo hi, bst lo hi Leaf
//! | bst_node : forall lo hi x l r,
//!     lt lo x -> lt x hi ->
//!     bst lo x l -> bst x hi r ->
//!     bst lo hi (Node x l r)
//! .
//! ```
//!
//! * `data name 'a … := Ctor ty… | … .` declares a datatype (primes
//!   introduce type parameters);
//! * `rel name : ty… := | rule : forall binders, premise -> … -> conclusion … .`
//!   declares an inductive relation;
//! * premises are relation applications, negations `~ (q x)`, equalities
//!   `e1 = e2`, and disequalities `e1 <> e2`;
//! * `S e` is the successor of a natural; numerals are `nat` literals;
//! * identifiers that are not constructors, functions, or relations are
//!   universally quantified variables (binders in `forall` may carry
//!   type annotations: `forall (x : nat) (l : list nat), …`);
//! * `mutual rel … . rel … . end` declares mutually recursive
//!   relations — inside the block, premises may reference any member,
//!   including ones declared later;
//! * `--` starts a line comment and `(* … *)` a block comment.
//!
//! Functions used in rules (e.g. `plus`) must already be registered in
//! the [`Universe`]; see [`Universe::std_funs`].

use crate::infer::infer_relation;
use crate::relation::{Premise, RelEnv, Rule};
use indrel_term::{TermExpr, TypeExpr, Universe, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse (or resolution, or inference) error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// What a successful parse added to the universe and relation
/// environment.
#[derive(Clone, Debug, Default)]
pub struct ParseOutput {
    /// Names of declared datatypes, in order.
    pub datatypes: Vec<String>,
    /// Names of declared relations, in order.
    pub relations: Vec<String>,
    /// Variables whose types inference could not determine, as
    /// `(relation, rule, variable)` triples.
    pub untyped_vars: Vec<(String, String, String)>,
}

/// Parses a program, registering datatypes into `universe` and relations
/// into `env`.
///
/// # Errors
///
/// Returns the first lexical, syntactic, resolution, or type error.
pub fn parse_program(
    universe: &mut Universe,
    env: &mut RelEnv,
    source: &str,
) -> Result<ParseOutput, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        universe,
        env,
        output: ParseOutput::default(),
    };
    while !p.at_end() {
        p.item()?;
    }
    Ok(p.output)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Prime(String), // 'a
    Num(u64),
    ColonEq, // :=
    Colon,
    Comma,
    Dot,
    Bar,
    LParen,
    RParen,
    Arrow, // ->
    Eq,    // =
    Neq,   // <>
    Tilde, // ~
    Eof,
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |line: usize, col: usize, message: String| ParseError { line, col, message };
    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col);
            continue;
        }
        // comments
        if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                advance(&mut i, &mut line, &mut col);
            }
            continue;
        }
        if c == '(' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            advance(&mut i, &mut line, &mut col);
            advance(&mut i, &mut line, &mut col);
            while i < chars.len() && depth > 0 {
                if chars[i] == '(' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance(&mut i, &mut line, &mut col);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&')') {
                    depth -= 1;
                    advance(&mut i, &mut line, &mut col);
                }
                advance(&mut i, &mut line, &mut col);
            }
            if depth > 0 {
                return Err(err(tline, tcol, "unterminated block comment".into()));
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while i < chars.len() && chars[i].is_ascii_digit() {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(chars[i] as u64 - '0' as u64))
                    .ok_or_else(|| err(tline, tcol, "numeral too large".into()))?;
                advance(&mut i, &mut line, &mut col);
            }
            out.push(Token {
                tok: Tok::Num(n),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
            {
                s.push(chars[i]);
                advance(&mut i, &mut line, &mut col);
            }
            out.push(Token {
                tok: Tok::Ident(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c == '\'' {
            advance(&mut i, &mut line, &mut col);
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                s.push(chars[i]);
                advance(&mut i, &mut line, &mut col);
            }
            if s.is_empty() {
                return Err(err(
                    tline,
                    tcol,
                    "expected type parameter name after `'`".into(),
                ));
            }
            out.push(Token {
                tok: Tok::Prime(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let tok = match two.as_str() {
            ":=" => Some((Tok::ColonEq, 2)),
            "->" => Some((Tok::Arrow, 2)),
            "<>" => Some((Tok::Neq, 2)),
            _ => None,
        };
        let (tok, n) = match tok {
            Some(t) => t,
            None => match c {
                ':' => (Tok::Colon, 1),
                ',' => (Tok::Comma, 1),
                '.' => (Tok::Dot, 1),
                '|' => (Tok::Bar, 1),
                '(' => (Tok::LParen, 1),
                ')' => (Tok::RParen, 1),
                '=' => (Tok::Eq, 1),
                '~' => (Tok::Tilde, 1),
                other => {
                    return Err(err(tline, tcol, format!("unexpected character `{other}`")));
                }
            },
        };
        for _ in 0..n {
            advance(&mut i, &mut line, &mut col);
        }
        out.push(Token {
            tok,
            line: tline,
            col: tcol,
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// ---------------------------------------------------------------------
// Raw terms (resolved after parsing)
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Raw {
    Num(u64),
    App(String, Vec<Raw>, usize, usize),
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    universe: &'a mut Universe,
    env: &'a mut RelEnv,
    output: ParseOutput,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        (self.tokens[self.pos].line, self.tokens[self.pos].col)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn item(&mut self) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if s == "data" => self.data_decl(),
            Tok::Ident(s) if s == "rel" => {
                self.bump();
                self.rel_decl_body(false)
            }
            Tok::Ident(s) if s == "mutual" => self.mutual_block(),
            _ => Err(self.error("expected `data`, `rel`, or `mutual` declaration")),
        }
    }

    // mutual rel … . rel … . end
    //
    // Two passes: the first reserves every relation's id and argument
    // types (so premises may reference any member, including later
    // ones), the second parses the rule bodies. Skipping a body in the
    // first pass is safe because `.` only occurs as a terminator.
    fn mutual_block(&mut self) -> Result<(), ParseError> {
        self.bump(); // mutual
        let start = self.pos;
        let mut count = 0usize;
        loop {
            match self.peek().clone() {
                Tok::Ident(s) if s == "end" => break,
                Tok::Ident(s) if s == "rel" => {
                    self.bump();
                    let name = self.ident("relation name")?;
                    self.expect(Tok::Colon, "`:`")?;
                    let mut arg_types = Vec::new();
                    while self.starts_type() {
                        arg_types.push(self.atom_type(&[])?);
                    }
                    self.expect(Tok::ColonEq, "`:=`")?;
                    self.env
                        .reserve(&name, arg_types)
                        .map_err(|e| self.error(e.to_string()))?;
                    count += 1;
                    loop {
                        match self.bump() {
                            Tok::Dot => break,
                            Tok::Eof => {
                                return Err(self.error("unterminated relation in `mutual` block"));
                            }
                            _ => {}
                        }
                    }
                }
                _ => {
                    return Err(self.error("expected `rel` declaration or `end` in `mutual` block"))
                }
            }
        }
        if count == 0 {
            return Err(self.error("`mutual` block declares no relation"));
        }
        self.pos = start;
        for _ in 0..count {
            self.bump(); // rel (checked in the first pass)
            self.rel_decl_body(true)?;
        }
        match self.bump() {
            Tok::Ident(s) if s == "end" => Ok(()),
            _ => Err(self.error("expected `end`")),
        }
    }

    // data name 'a … := Ctor ty… | … .
    fn data_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // data
        let name = self.ident("datatype name")?;
        let mut params = Vec::new();
        while let Tok::Prime(p) = self.peek().clone() {
            self.bump();
            params.push(p);
        }
        self.expect(Tok::ColonEq, "`:=`")?;
        let dt = self
            .universe
            .reserve_datatype(&name, params.len())
            .map_err(|e| self.error(e.to_string()))?;
        loop {
            let cname = self.ident("constructor name")?;
            let mut arg_types = Vec::new();
            while self.starts_type() {
                arg_types.push(self.atom_type(&params)?);
            }
            self.universe
                .define_ctor(dt, &cname, arg_types)
                .map_err(|e| self.error(e.to_string()))?;
            match self.bump() {
                Tok::Bar => continue,
                Tok::Dot => break,
                _ => return Err(self.error("expected `|` or `.` after constructor")),
            }
        }
        self.output.datatypes.push(name);
        Ok(())
    }

    fn starts_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(_) | Tok::Prime(_) | Tok::LParen)
    }

    fn atom_type(&mut self, params: &[String]) -> Result<TypeExpr, ParseError> {
        match self.peek().clone() {
            Tok::Prime(p) => {
                self.bump();
                let idx = params
                    .iter()
                    .position(|q| *q == p)
                    .ok_or_else(|| self.error(format!("unknown type parameter `'{p}`")))?;
                Ok(TypeExpr::Param(idx as u32))
            }
            Tok::Ident(s) => {
                self.bump();
                self.resolve_type_head(&s, Vec::new())
            }
            Tok::LParen => {
                self.bump();
                let head = self.ident("type name")?;
                let mut args = Vec::new();
                while self.starts_type() {
                    args.push(self.atom_type(params)?);
                }
                self.expect(Tok::RParen, "`)`")?;
                self.resolve_type_head(&head, args)
            }
            _ => Err(self.error("expected a type")),
        }
    }

    fn resolve_type_head(&self, head: &str, args: Vec<TypeExpr>) -> Result<TypeExpr, ParseError> {
        match head {
            "nat" => {
                if args.is_empty() {
                    Ok(TypeExpr::Nat)
                } else {
                    Err(self.error("`nat` takes no type arguments"))
                }
            }
            "bool" => {
                if args.is_empty() {
                    Ok(TypeExpr::Bool)
                } else {
                    Err(self.error("`bool` takes no type arguments"))
                }
            }
            _ => {
                let dt = self
                    .universe
                    .dt_id(head)
                    .ok_or_else(|| self.error(format!("unknown type `{head}`")))?;
                let want = self.universe.datatype(dt).nparams();
                if want != args.len() {
                    return Err(self.error(format!(
                        "type `{head}` expects {want} arguments, found {}",
                        args.len()
                    )));
                }
                Ok(TypeExpr::App(dt, args))
            }
        }
    }

    // rel name : ty… := | rule … .   (after the `rel` keyword)
    //
    // With `pre_reserved`, the relation's id and argument types were
    // already registered by a surrounding `mutual` block's first pass.
    fn rel_decl_body(&mut self, pre_reserved: bool) -> Result<(), ParseError> {
        let name = self.ident("relation name")?;
        self.expect(Tok::Colon, "`:`")?;
        let mut arg_types = Vec::new();
        while self.starts_type() {
            arg_types.push(self.atom_type(&[])?);
        }
        self.expect(Tok::ColonEq, "`:=`")?;
        let rel = if pre_reserved {
            self.env.rel_id(&name).expect("reserved in first pass")
        } else {
            self.env
                .reserve(&name, arg_types)
                .map_err(|e| self.error(e.to_string()))?
        };
        let mut rules = Vec::new();
        loop {
            match self.bump() {
                Tok::Bar => rules.push(self.rule(&name)?),
                Tok::Dot => break,
                _ => return Err(self.error("expected `|` or `.`")),
            }
        }
        *self.env.relation_mut(rel).rules_mut() = rules;
        // Run type inference now that the rules are installed.
        let mut relation = self.env.relation(rel).clone();
        let untyped = infer_relation(self.universe, self.env, &mut relation)
            .map_err(|e| self.error(e.to_string()))?;
        for (rule, var) in relation.rules().iter().flat_map(|r| {
            let name = r.name().to_string();
            r.var_names()
                .iter()
                .zip(r.var_types())
                .filter(|(_, t)| t.is_none())
                .map(move |(v, _)| (name.clone(), v.clone()))
        }) {
            self.output.untyped_vars.push((name.clone(), rule, var));
        }
        let _ = untyped;
        *self.env.relation_mut(rel) = relation;
        self.output.relations.push(name);
        Ok(())
    }

    // rule := IDENT ":" ["forall" binders ","] segments
    fn rule(&mut self, rel_name: &str) -> Result<Rule, ParseError> {
        let rule_name = self.ident("rule name")?;
        self.expect(Tok::Colon, "`:`")?;
        let mut scope = Scope::default();
        if matches!(self.peek(), Tok::Ident(s) if s == "forall") {
            self.bump();
            loop {
                match self.peek().clone() {
                    Tok::Ident(s) => {
                        self.bump();
                        scope.declare(&s, None);
                    }
                    Tok::LParen => {
                        self.bump();
                        let mut names = Vec::new();
                        while let Tok::Ident(s) = self.peek().clone() {
                            self.bump();
                            names.push(s);
                        }
                        self.expect(Tok::Colon, "`:` in binder")?;
                        let head = self.ident("type name")?;
                        let mut args = Vec::new();
                        while self.starts_type() {
                            args.push(self.atom_type(&[])?);
                        }
                        let ty = self.resolve_type_head(&head, args)?;
                        self.expect(Tok::RParen, "`)`")?;
                        for n in names {
                            scope.declare(&n, Some(ty.clone()));
                        }
                    }
                    Tok::Comma => {
                        self.bump();
                        break;
                    }
                    _ => return Err(self.error("expected binder or `,`")),
                }
            }
        }
        // Parse arrow-separated segments.
        let mut segments = Vec::new();
        loop {
            segments.push(self.segment()?);
            if matches!(self.peek(), Tok::Arrow) {
                self.bump();
            } else {
                break;
            }
        }
        let (conclusion_raw, premise_raws) = segments
            .split_last()
            .map(|(c, ps)| (c.clone(), ps.to_vec()))
            .ok_or_else(|| self.error("empty rule"))?;

        // Resolve premises.
        let mut premises = Vec::new();
        for seg in premise_raws {
            premises.push(self.resolve_premise(seg, &mut scope)?);
        }
        // Resolve conclusion — must apply the relation being declared.
        let Segment::App { negated, raw } = conclusion_raw else {
            return Err(self.error("rule conclusion must apply the relation being declared"));
        };
        if negated {
            return Err(self.error("rule conclusion cannot be negated"));
        }
        let Raw::App(head, args, line, col) = raw else {
            return Err(self.error("rule conclusion must apply the relation being declared"));
        };
        if head != rel_name {
            return Err(ParseError {
                line,
                col,
                message: format!("conclusion applies `{head}`, expected `{rel_name}`"),
            });
        }
        let conclusion = args
            .into_iter()
            .map(|r| self.resolve_term(r, &mut scope))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Rule::new(
            rule_name,
            scope.names,
            scope.types,
            premises,
            conclusion,
        ))
    }

    /// Parses a segment: either `~ app`, an application, or
    /// `term (=|<>) term`.
    fn segment(&mut self) -> Result<Segment, ParseError> {
        let negated = if matches!(self.peek(), Tok::Tilde) {
            self.bump();
            true
        } else {
            false
        };
        let lhs = self.app_term()?;
        match self.peek() {
            Tok::Eq => {
                self.bump();
                let rhs = self.app_term()?;
                Ok(Segment::Equality { negated, lhs, rhs })
            }
            Tok::Neq => {
                self.bump();
                let rhs = self.app_term()?;
                Ok(Segment::Equality {
                    negated: !negated,
                    lhs,
                    rhs,
                })
            }
            _ => Ok(Segment::App { negated, raw: lhs }),
        }
    }

    /// Parses an application-style raw term: `head atom*` or an atom.
    fn app_term(&mut self) -> Result<Raw, ParseError> {
        let (line, col) = self.here();
        match self.peek().clone() {
            Tok::Ident(head) => {
                self.bump();
                let mut args = Vec::new();
                while self.starts_atom() {
                    args.push(self.atom_term()?);
                }
                Ok(Raw::App(head, args, line, col))
            }
            _ => self.atom_term(),
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(self.peek(), Tok::Ident(_) | Tok::Num(_) | Tok::LParen)
    }

    fn atom_term(&mut self) -> Result<Raw, ParseError> {
        let (line, col) = self.here();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Raw::Num(n))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Raw::App(s, Vec::new(), line, col))
            }
            Tok::LParen => {
                self.bump();
                let t = self.app_term()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.error("expected a term")),
        }
    }

    fn resolve_premise(&mut self, seg: Segment, scope: &mut Scope) -> Result<Premise, ParseError> {
        match seg {
            Segment::Equality { negated, lhs, rhs } => Ok(Premise::Eq {
                lhs: self.resolve_term(lhs, scope)?,
                rhs: self.resolve_term(rhs, scope)?,
                negated,
            }),
            Segment::App { negated, raw } => {
                let Raw::App(head, args, line, col) = raw else {
                    return Err(self.error("a premise must apply a relation"));
                };
                let Some(rel) = self.env.rel_id(&head) else {
                    return Err(ParseError {
                        line,
                        col,
                        message: format!("unknown relation `{head}` in premise"),
                    });
                };
                let args = args
                    .into_iter()
                    .map(|r| self.resolve_term(r, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Premise::Rel { rel, args, negated })
            }
        }
    }

    fn resolve_term(&mut self, raw: Raw, scope: &mut Scope) -> Result<TermExpr, ParseError> {
        match raw {
            Raw::Num(n) => Ok(TermExpr::NatLit(n)),
            Raw::App(head, args, line, col) => {
                let args: Vec<TermExpr> = args
                    .into_iter()
                    .map(|r| self.resolve_term(r, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                match head.as_str() {
                    "true" if args.is_empty() => return Ok(TermExpr::BoolLit(true)),
                    "false" if args.is_empty() => return Ok(TermExpr::BoolLit(false)),
                    "S" => {
                        if args.len() != 1 {
                            return Err(ParseError {
                                line,
                                col,
                                message: "`S` takes exactly one argument".into(),
                            });
                        }
                        return Ok(TermExpr::succ(args.into_iter().next().expect("one arg")));
                    }
                    "O" if args.is_empty() => return Ok(TermExpr::NatLit(0)),
                    _ => {}
                }
                if let Some(c) = self.universe.ctor_id(&head) {
                    let want = self.universe.ctor(c).arity();
                    if want != args.len() {
                        return Err(ParseError {
                            line,
                            col,
                            message: format!(
                                "constructor `{head}` expects {want} arguments, found {}",
                                args.len()
                            ),
                        });
                    }
                    return Ok(TermExpr::Ctor(c, args));
                }
                if let Some(f) = self.universe.fun_id(&head) {
                    let want = self.universe.fun(f).arg_types().len();
                    if want != args.len() {
                        return Err(ParseError {
                            line,
                            col,
                            message: format!(
                                "function `{head}` expects {want} arguments, found {}",
                                args.len()
                            ),
                        });
                    }
                    return Ok(TermExpr::Fun(f, args));
                }
                if self.env.rel_id(&head).is_some() {
                    return Err(ParseError {
                        line,
                        col,
                        message: format!("relation `{head}` used in term position"),
                    });
                }
                // A variable.
                if !args.is_empty() {
                    return Err(ParseError {
                        line,
                        col,
                        message: format!("variable `{head}` cannot be applied to arguments"),
                    });
                }
                Ok(TermExpr::Var(scope.declare(&head, None)))
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Segment {
    App { negated: bool, raw: Raw },
    Equality { negated: bool, lhs: Raw, rhs: Raw },
}

#[derive(Default)]
struct Scope {
    names: Vec<String>,
    types: Vec<Option<TypeExpr>>,
    by_name: HashMap<String, VarId>,
}

impl Scope {
    fn declare(&mut self, name: &str, ty: Option<TypeExpr>) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            if let (Some(t), None) = (&ty, &self.types[id.index()]) {
                self.types[id.index()] = Some(t.clone());
            }
            return id;
        }
        let id = VarId::new(self.names.len());
        self.names.push(name.to_string());
        self.types.push(ty);
        self.by_name.insert(name.to_string(), id);
        id
    }
}

/// Declares a relation from source and returns its id; convenience for
/// single-relation programs.
///
/// # Errors
///
/// Propagates [`ParseError`], and reports a program that declares no
/// relation.
pub fn parse_relation(
    universe: &mut Universe,
    env: &mut RelEnv,
    source: &str,
) -> Result<indrel_term::RelId, ParseError> {
    let out = parse_program(universe, env, source)?;
    let name = out.relations.last().ok_or(ParseError {
        line: 1,
        col: 1,
        message: "program declares no relation".into(),
    })?;
    Ok(env.rel_id(name).expect("just declared"))
}

/// Used by tests and docs: a fresh universe with the standard datatypes
/// and functions registered.
pub fn std_universe() -> Universe {
    let mut u = Universe::new();
    u.std_list();
    u.std_pair();
    u.std_option();
    u.std_funs();
    u
}

#[allow(clippy::items_after_test_module)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::features;
    use crate::relation::Premise;

    #[test]
    fn parses_data_and_rel() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        let out = parse_program(
            &mut u,
            &mut env,
            r"
            data tree := Leaf | Node nat tree tree .
            rel mirror : tree tree :=
            | m_leaf : mirror Leaf Leaf
            | m_node : forall x l r l' r',
                mirror l l' -> mirror r r' ->
                mirror (Node x l r) (Node x r' l')
            .
            ",
        )
        .unwrap();
        assert_eq!(out.datatypes, vec!["tree"]);
        assert_eq!(out.relations, vec!["mirror"]);
        let rel = env.rel_id("mirror").unwrap();
        assert_eq!(env.relation(rel).rules().len(), 2);
        assert!(out.untyped_vars.is_empty());
        // inference typed everything
        let rule = &env.relation(rel).rules()[1];
        assert!(rule.var_types().iter().all(Option::is_some));
    }

    #[test]
    fn parses_le_with_succ() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel le : nat nat :=
            | le_n : forall n, le n n
            | le_S : forall n m, le n m -> le n (S m)
            .
            ",
        )
        .unwrap();
        let le = env.rel_id("le").unwrap();
        let rule = &env.relation(le).rules()[1];
        assert_eq!(rule.conclusion()[1], TermExpr::succ(TermExpr::var(1)));
        // le_n has a non-linear conclusion
        assert!(features(env.relation(le)).nonlinear_conclusion);
    }

    #[test]
    fn parses_negation_equality_and_functions() {
        let mut u = std_universe();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel even' : nat :=
            | even_0 : even' 0
            | even_SS : forall n, even' n -> even' (S (S n))
            .
            rel weird : nat nat :=
            | w : forall n m,
                ~ (even' n) -> plus n 1 = m -> n <> 4 -> weird n m
            .
            ",
        )
        .unwrap();
        let w = env.rel_id("weird").unwrap();
        let rule = &env.relation(w).rules()[0];
        assert_eq!(rule.premises().len(), 3);
        assert!(matches!(
            rule.premises()[0],
            Premise::Rel { negated: true, .. }
        ));
        assert!(matches!(
            rule.premises()[1],
            Premise::Eq { negated: false, .. }
        ));
        assert!(matches!(
            rule.premises()[2],
            Premise::Eq { negated: true, .. }
        ));
    }

    #[test]
    fn parses_parameterized_types_and_annotations() {
        let mut u = std_universe();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            rel in_list : nat (list nat) :=
            | in_here : forall (x : nat) (l : list nat), in_list x (cons x l)
            | in_there : forall x y l, in_list x l -> in_list x (cons y l)
            .
            ",
        )
        .unwrap();
        let r = env.rel_id("in_list").unwrap();
        assert_eq!(env.relation(r).arity(), 2);
        let rule = &env.relation(r).rules()[0];
        assert!(features(env.relation(r)).nonlinear_conclusion);
        assert_eq!(rule.var_types()[0], Some(TypeExpr::Nat));
    }

    #[test]
    fn comments_are_skipped() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(
            &mut u,
            &mut env,
            r"
            -- a line comment
            (* a (* nested *) block comment *)
            rel z : nat := | z0 : z 0 .
            ",
        )
        .unwrap();
        assert!(env.rel_id("z").is_some());
    }

    #[test]
    fn error_positions_reported() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        let err = parse_program(&mut u, &mut env, "rel r : nat := | a : q 1 -> r 0 .").unwrap_err();
        assert!(err.message.contains("unknown relation `q`"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn conclusion_must_match_declared_relation() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, "rel a : nat := | a0 : a 0 .").unwrap();
        let err = parse_program(&mut u, &mut env, "rel b : nat := | b0 : a 0 .").unwrap_err();
        assert!(err.message.contains("expected `b`"));
    }

    #[test]
    fn parse_relation_returns_last_declared() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        let id = parse_relation(&mut u, &mut env, "rel only : nat := | o : only 0 .").unwrap();
        assert_eq!(env.relation(id).name(), "only");
    }

    #[test]
    fn mutual_block_allows_forward_references() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        let out = parse_program(
            &mut u,
            &mut env,
            r"
            mutual
            rel even2 : nat :=
            | e0 : even2 0
            | eS : forall n, odd2 n -> even2 (S n)
            .
            rel odd2 : nat :=
            | oS : forall n, even2 n -> odd2 (S n)
            .
            end
            ",
        )
        .unwrap();
        assert_eq!(out.relations, vec!["even2", "odd2"]);
        let even2 = env.rel_id("even2").unwrap();
        let odd2 = env.rel_id("odd2").unwrap();
        assert!(matches!(
            env.relation(even2).rules()[1].premises()[0],
            Premise::Rel { rel, .. } if rel == odd2
        ));
        assert!(matches!(
            env.relation(odd2).rules()[0].premises()[0],
            Premise::Rel { rel, .. } if rel == even2
        ));
        // Inference saw the reserved signatures.
        assert!(env.relation(even2).rules()[1]
            .var_types()
            .iter()
            .all(Option::is_some));
    }

    #[test]
    fn mutual_block_rejects_stray_items_and_emptiness() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        let err = parse_program(&mut u, &mut env, "mutual end").unwrap_err();
        assert!(err.message.contains("declares no relation"), "{err}");
        let err = parse_program(
            &mut u,
            &mut env,
            "mutual data t := T . rel a : nat := | a0 : a 0 . end",
        )
        .unwrap_err();
        assert!(err.message.contains("`mutual` block"), "{err}");
        let err = parse_program(&mut u, &mut env, "mutual rel b : nat := | b0 : b 0").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn numerals_and_o_are_nat_literals() {
        let mut u = Universe::new();
        let mut env = RelEnv::new();
        parse_program(&mut u, &mut env, "rel t : nat := | t1 : t 5 | t2 : t O .").unwrap();
        let t = env.rel_id("t").unwrap();
        assert_eq!(
            env.relation(t).rules()[0].conclusion()[0],
            TermExpr::NatLit(5)
        );
        assert_eq!(
            env.relation(t).rules()[1].conclusion()[0],
            TermExpr::NatLit(0)
        );
    }
}
