//! Type inference for rule variables.
//!
//! Rule variables may be annotated explicitly (`forall (x : nat), …`) or
//! left to inference. Inference propagates the declared argument types
//! of relations, constructors, and functions top-down through rule
//! conclusions and premises, and propagates types across equality
//! premises until a fixpoint. Variables whose types remain unknown are
//! reported; the derivation engine only requires a type when it must
//! instantiate a variable with an unconstrained producer.

use crate::relation::{Premise, RelEnv, Relation, Rule};
use indrel_term::{TermExpr, TypeExpr, Universe, VarId};
use std::error::Error;
use std::fmt;

/// A type error found during inference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InferError {
    /// A variable is used at two incompatible types.
    Conflict {
        /// The offending rule name.
        rule: String,
        /// The variable name.
        var: String,
        /// First type.
        expected: String,
        /// Second type.
        found: String,
    },
    /// An expression's head does not fit the expected type.
    Mismatch {
        /// The offending rule name.
        rule: String,
        /// Description of the ill-typed expression.
        detail: String,
    },
    /// A premise applies a relation at the wrong arity.
    Arity {
        /// The offending rule name.
        rule: String,
        /// The relation or constructor name.
        head: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Conflict {
                rule,
                var,
                expected,
                found,
            } => write!(
                f,
                "rule `{rule}`: variable `{var}` used at both `{expected}` and `{found}`"
            ),
            InferError::Mismatch { rule, detail } => write!(f, "rule `{rule}`: {detail}"),
            InferError::Arity {
                rule,
                head,
                expected,
                found,
            } => write!(
                f,
                "rule `{rule}`: `{head}` expects {expected} arguments, found {found}"
            ),
        }
    }
}

impl Error for InferError {}

/// Runs inference over every rule of `relation`, filling in variable
/// types in place. Returns the names of variables that remain untyped.
///
/// # Errors
///
/// Returns an [`InferError`] on conflicting or ill-typed uses.
pub fn infer_relation(
    universe: &Universe,
    env: &RelEnv,
    relation: &mut Relation,
) -> Result<Vec<String>, InferError> {
    let arg_types = relation.arg_types().to_vec();
    let mut untyped = Vec::new();
    for rule in relation.rules_mut() {
        untyped.extend(infer_rule(universe, env, &arg_types, rule)?);
    }
    Ok(untyped)
}

fn infer_rule(
    universe: &Universe,
    env: &RelEnv,
    arg_types: &[TypeExpr],
    rule: &mut Rule,
) -> Result<Vec<String>, InferError> {
    let mut cx = Cx {
        universe,
        rule_name: rule.name().to_string(),
        var_names: rule.var_names().to_vec(),
        types: rule.var_types().to_vec(),
    };
    if rule.conclusion().len() != arg_types.len() {
        return Err(InferError::Arity {
            rule: cx.rule_name,
            head: "conclusion".to_string(),
            expected: arg_types.len(),
            found: rule.conclusion().len(),
        });
    }
    // Fixpoint: checking is monotone (only fills in var types), so a few
    // rounds suffice; equality premises may need the extra rounds.
    for _round in 0..4 {
        let before = cx.types.clone();
        for (e, t) in rule.conclusion().iter().zip(arg_types) {
            cx.check(e, t)?;
        }
        for p in rule.premises() {
            match p {
                Premise::Rel { rel, args, .. } => {
                    let decl = env.relation(*rel);
                    if args.len() != decl.arity() {
                        return Err(InferError::Arity {
                            rule: cx.rule_name,
                            head: decl.name().to_string(),
                            expected: decl.arity(),
                            found: args.len(),
                        });
                    }
                    let tys = decl.arg_types().to_vec();
                    for (e, t) in args.iter().zip(&tys) {
                        cx.check(e, t)?;
                    }
                }
                Premise::Eq { lhs, rhs, .. } => {
                    if let Some(t) = cx.synth(lhs) {
                        cx.check(rhs, &t)?;
                    } else if let Some(t) = cx.synth(rhs) {
                        cx.check(lhs, &t)?;
                    }
                }
            }
        }
        if cx.types == before {
            break;
        }
    }
    let mut untyped = Vec::new();
    for (i, t) in cx.types.iter().enumerate() {
        if t.is_none() {
            untyped.push(cx.var_names[i].clone());
        }
    }
    let types = cx.types;
    for (i, t) in types.into_iter().enumerate() {
        if let Some(t) = t {
            rule.set_var_type(VarId::new(i), t);
        }
    }
    Ok(untyped)
}

struct Cx<'a> {
    universe: &'a Universe,
    rule_name: String,
    var_names: Vec<String>,
    types: Vec<Option<TypeExpr>>,
}

impl Cx<'_> {
    /// Checks `e` against the (ground) expected type, binding variable
    /// types along the way.
    fn check(&mut self, e: &TermExpr, expected: &TypeExpr) -> Result<(), InferError> {
        match e {
            TermExpr::Var(x) => match &self.types[x.index()] {
                None => {
                    self.types[x.index()] = Some(expected.clone());
                    Ok(())
                }
                Some(t) if t == expected => Ok(()),
                Some(t) => Err(InferError::Conflict {
                    rule: self.rule_name.clone(),
                    var: self.var_names[x.index()].clone(),
                    expected: t.display(self.universe).to_string(),
                    found: expected.display(self.universe).to_string(),
                }),
            },
            TermExpr::NatLit(_) => self.expect(expected, &TypeExpr::Nat, "a natural literal"),
            TermExpr::BoolLit(_) => self.expect(expected, &TypeExpr::Bool, "a boolean literal"),
            TermExpr::Succ(inner) => {
                self.expect(expected, &TypeExpr::Nat, "a successor")?;
                self.check(inner, &TypeExpr::Nat)
            }
            TermExpr::Ctor(c, args) => {
                let decl = self.universe.ctor(*c);
                let TypeExpr::App(dt, ty_args) = expected else {
                    return Err(InferError::Mismatch {
                        rule: self.rule_name.clone(),
                        detail: format!(
                            "constructor `{}` used where `{}` was expected",
                            decl.name(),
                            expected.display(self.universe)
                        ),
                    });
                };
                if decl.datatype() != *dt {
                    return Err(InferError::Mismatch {
                        rule: self.rule_name.clone(),
                        detail: format!(
                            "constructor `{}` does not belong to datatype `{}`",
                            decl.name(),
                            self.universe.datatype(*dt).name()
                        ),
                    });
                }
                if args.len() != decl.arity() {
                    return Err(InferError::Arity {
                        rule: self.rule_name.clone(),
                        head: decl.name().to_string(),
                        expected: decl.arity(),
                        found: args.len(),
                    });
                }
                let arg_tys = self.universe.ctor_arg_types(*c, ty_args);
                for (a, t) in args.iter().zip(&arg_tys) {
                    self.check(a, t)?;
                }
                Ok(())
            }
            TermExpr::Fun(fid, args) => {
                let decl = self.universe.fun(*fid);
                if args.len() != decl.arg_types().len() {
                    return Err(InferError::Arity {
                        rule: self.rule_name.clone(),
                        head: decl.name().to_string(),
                        expected: decl.arg_types().len(),
                        found: args.len(),
                    });
                }
                // Bind the function's type parameters by matching its
                // declared return type against the expected type.
                let mut subst: Vec<Option<TypeExpr>> = vec![None; 8];
                if !match_params(decl.ret_type(), expected, &mut subst) {
                    return Err(InferError::Mismatch {
                        rule: self.rule_name.clone(),
                        detail: format!(
                            "function `{}` returns `{}` but `{}` was expected",
                            decl.name(),
                            decl.ret_type().display(self.universe),
                            expected.display(self.universe)
                        ),
                    });
                }
                let arg_tys = decl.arg_types().to_vec();
                for (a, t) in args.iter().zip(&arg_tys) {
                    let inst = instantiate_partial(t, &subst);
                    if inst.is_ground() {
                        self.check(a, &inst)?;
                    } else if let Some(syn) = self.synth(a) {
                        // Use the argument's synthesized type to bind the
                        // remaining parameters, then re-check.
                        if match_params(t, &syn, &mut subst) {
                            let inst = instantiate_partial(t, &subst);
                            if inst.is_ground() {
                                self.check(a, &inst)?;
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn expect(&self, expected: &TypeExpr, actual: &TypeExpr, what: &str) -> Result<(), InferError> {
        if expected == actual {
            Ok(())
        } else {
            Err(InferError::Mismatch {
                rule: self.rule_name.clone(),
                detail: format!(
                    "{what} used where `{}` was expected",
                    expected.display(self.universe)
                ),
            })
        }
    }

    /// Attempts to synthesize a ground type for `e` bottom-up.
    fn synth(&self, e: &TermExpr) -> Option<TypeExpr> {
        match e {
            TermExpr::Var(x) => self.types[x.index()].clone(),
            TermExpr::NatLit(_) | TermExpr::Succ(_) => Some(TypeExpr::Nat),
            TermExpr::BoolLit(_) => Some(TypeExpr::Bool),
            TermExpr::Ctor(c, args) => {
                let decl = self.universe.ctor(*c);
                let dt = decl.datatype();
                let nparams = self.universe.datatype(dt).nparams();
                if nparams == 0 {
                    return Some(TypeExpr::datatype(dt));
                }
                // Bind the datatype parameters from synthesized argument
                // types.
                let mut subst: Vec<Option<TypeExpr>> = vec![None; nparams];
                let decl_args = decl.arg_types().to_vec();
                for (a, t) in args.iter().zip(&decl_args) {
                    if let Some(syn) = self.synth(a) {
                        match_params(t, &syn, &mut subst);
                    }
                }
                if subst.iter().take(nparams).all(Option::is_some) {
                    Some(TypeExpr::App(dt, subst.into_iter().flatten().collect()))
                } else {
                    None
                }
            }
            TermExpr::Fun(fid, _) => {
                let ret = self.universe.fun(*fid).ret_type();
                if ret.is_ground() {
                    Some(ret.clone())
                } else {
                    None
                }
            }
        }
    }
}

/// Matches a (possibly parameterized) declared type against a ground
/// type, binding parameters in `subst`. Returns `false` on a structural
/// mismatch.
fn match_params(decl: &TypeExpr, ground: &TypeExpr, subst: &mut Vec<Option<TypeExpr>>) -> bool {
    match (decl, ground) {
        (TypeExpr::Param(i), g) => {
            let i = *i as usize;
            if subst.len() <= i {
                subst.resize(i + 1, None);
            }
            match &subst[i] {
                None => {
                    subst[i] = Some(g.clone());
                    true
                }
                Some(t) => t == g,
            }
        }
        (TypeExpr::Nat, TypeExpr::Nat) | (TypeExpr::Bool, TypeExpr::Bool) => true,
        (TypeExpr::App(d1, a1), TypeExpr::App(d2, a2)) => {
            d1 == d2
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2.iter())
                    .all(|(x, y)| match_params(x, y, subst))
        }
        _ => false,
    }
}

fn instantiate_partial(ty: &TypeExpr, subst: &[Option<TypeExpr>]) -> TypeExpr {
    match ty {
        TypeExpr::Nat => TypeExpr::Nat,
        TypeExpr::Bool => TypeExpr::Bool,
        TypeExpr::Param(i) => subst
            .get(*i as usize)
            .and_then(Clone::clone)
            .unwrap_or(TypeExpr::Param(*i)),
        TypeExpr::App(dt, args) => TypeExpr::App(
            *dt,
            args.iter().map(|t| instantiate_partial(t, subst)).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleBuilder;

    #[test]
    fn infers_from_conclusion() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        let le = env
            .reserve("le", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("le_n");
        let n = b.var_untyped("n");
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(n)]);
        env.relation_mut(le).rules_mut().push(rule);
        let mut rel = env.relation(le).clone();
        let untyped = infer_relation(&u, &env, &mut rel).unwrap();
        assert!(untyped.is_empty());
        assert_eq!(rel.rules()[0].var_types()[0], Some(TypeExpr::Nat));
    }

    #[test]
    fn conflict_detected() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        let r = env
            .reserve("r", vec![TypeExpr::Nat, TypeExpr::Bool])
            .unwrap();
        let mut b = RuleBuilder::new("bad");
        let x = b.var_untyped("x");
        let rule = b.conclusion(vec![TermExpr::Var(x), TermExpr::Var(x)]);
        env.relation_mut(r).rules_mut().push(rule);
        let mut rel = env.relation(r).clone();
        let err = infer_relation(&u, &env, &mut rel).unwrap_err();
        assert!(matches!(err, InferError::Conflict { .. }));
    }

    #[test]
    fn infers_through_equality_premises() {
        let mut u = Universe::new();
        u.std_funs();
        let mult = u.fun_id("mult").unwrap();
        let mut env = RelEnv::new();
        // square_of n m with premise  mult n n = m
        let sq = env
            .reserve("square_of", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("sq");
        let n = b.var_untyped("n");
        let m = b.var_untyped("m");
        b.premise_eq(
            TermExpr::Fun(mult, vec![TermExpr::Var(n), TermExpr::Var(n)]),
            TermExpr::Var(m),
        );
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(m)]);
        env.relation_mut(sq).rules_mut().push(rule);
        let mut rel = env.relation(sq).clone();
        let untyped = infer_relation(&u, &env, &mut rel).unwrap();
        assert!(untyped.is_empty());
    }

    #[test]
    fn infers_ctor_args_at_list_instance() {
        let mut u = Universe::new();
        let list = u.std_list();
        let cons = u.ctor_id("cons").unwrap();
        let listnat = TypeExpr::App(list, vec![TypeExpr::Nat]);
        let mut env = RelEnv::new();
        let r = env.reserve("r", vec![listnat.clone()]).unwrap();
        let mut b = RuleBuilder::new("c");
        let x = b.var_untyped("x");
        let xs = b.var_untyped("xs");
        let rule = b.conclusion(vec![TermExpr::ctor(
            cons,
            vec![TermExpr::Var(x), TermExpr::Var(xs)],
        )]);
        env.relation_mut(r).rules_mut().push(rule);
        let mut rel = env.relation(r).clone();
        infer_relation(&u, &env, &mut rel).unwrap();
        assert_eq!(rel.rules()[0].var_types()[0], Some(TypeExpr::Nat));
        assert_eq!(rel.rules()[0].var_types()[1], Some(listnat));
    }

    #[test]
    fn synthesizes_parameterized_ctor_types() {
        let mut u = Universe::new();
        let list = u.std_list();
        let cons = u.ctor_id("cons").unwrap();
        let nil = u.ctor_id("nil").unwrap();
        let mut env = RelEnv::new();
        let r = env.reserve("r", vec![TypeExpr::Nat]).unwrap();
        // premise: l = cons 1 nil  (l's type must come from the rhs)
        let mut b = RuleBuilder::new("c");
        let n = b.var_untyped("n");
        let l = b.var_untyped("l");
        b.premise_eq(
            TermExpr::Var(l),
            TermExpr::ctor(cons, vec![TermExpr::NatLit(1), TermExpr::ctor(nil, vec![])]),
        );
        let rule = b.conclusion(vec![TermExpr::Var(n)]);
        env.relation_mut(r).rules_mut().push(rule);
        let mut rel = env.relation(r).clone();
        infer_relation(&u, &env, &mut rel).unwrap();
        assert_eq!(
            rel.rules()[0].var_types()[1],
            Some(TypeExpr::App(list, vec![TypeExpr::Nat]))
        );
    }

    #[test]
    fn reports_untyped_vars() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        let q = env.reserve("q", vec![TypeExpr::Nat]).unwrap();
        let r = env.reserve("r", vec![TypeExpr::Nat]).unwrap();
        let _ = q;
        // A rule with a variable used nowhere typeable: forall n x, r n
        // (x never occurs — degenerate but exercises the report).
        let mut b = RuleBuilder::new("c");
        let n = b.var_untyped("n");
        let _x = b.var_untyped("x");
        let rule = b.conclusion(vec![TermExpr::Var(n)]);
        env.relation_mut(r).rules_mut().push(rule);
        let mut rel = env.relation(r).clone();
        let untyped = infer_relation(&u, &env, &mut rel).unwrap();
        assert_eq!(untyped, vec!["x".to_string()]);
    }
}
