//! The preprocessing phase of §3.1: rewriting non-linear conclusion
//! patterns and conclusion function calls into equality premises.
//!
//! After preprocessing, every rule conclusion is a vector of *linear
//! constructor terms* — exactly the shape the core derivation algorithm
//! (Algorithm 1) requires — and the extra constraints appear as
//! [`Premise::Eq`] premises prepended to the rule, mirroring the paper's
//! rewrite of
//!
//! ```text
//! TAbs : forall e t1 t2, typing (t1 :: Γ) e t2 ->
//!        typing Γ (Abs t1 e) (Arr t1 t2)
//! ```
//!
//! into
//!
//! ```text
//! TAbs : forall e t1 t2 t1', t1 = t1' -> typing (t1 :: Γ) e t2 ->
//!        typing Γ (Abs t1 e) (Arr t1' t2)
//! ```

use crate::infer::{infer_relation, InferError};
use crate::relation::{Premise, RelEnv, Relation, Rule};
use indrel_term::{TermExpr, Universe, VarId};
use std::collections::BTreeSet;

/// Statistics about what preprocessing had to rewrite; used by the
/// Table 1 harness to classify relations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessReport {
    /// Number of variable occurrences renamed to restore linearity.
    pub nonlinear_occurrences: usize,
    /// Number of function calls hoisted out of conclusions.
    pub hoisted_calls: usize,
}

impl PreprocessReport {
    /// `true` when the relation was already in core form.
    pub fn is_trivial(&self) -> bool {
        self.nonlinear_occurrences == 0 && self.hoisted_calls == 0
    }
}

/// Preprocesses every rule of a relation, returning the rewritten
/// relation and a report. The input relation is left untouched.
///
/// # Errors
///
/// Propagates [`InferError`] from re-running type inference over the
/// rewritten rules (fresh variables receive their types here).
pub fn preprocess_relation(
    universe: &Universe,
    env: &RelEnv,
    relation: &Relation,
) -> Result<(Relation, PreprocessReport), InferError> {
    let mut report = PreprocessReport::default();
    let mut rules = Vec::with_capacity(relation.rules().len());
    for rule in relation.rules() {
        rules.push(preprocess_rule(rule, &mut report));
    }
    let mut out = Relation::new(relation.name(), relation.arg_types().to_vec(), rules);
    infer_relation(universe, env, &mut out)?;
    Ok((out, report))
}

fn preprocess_rule(rule: &Rule, report: &mut PreprocessReport) -> Rule {
    let mut new_rule = Rule::new(
        rule.name(),
        rule.var_names().to_vec(),
        rule.var_types().to_vec(),
        Vec::new(),
        Vec::new(),
    );
    let mut seen: BTreeSet<VarId> = BTreeSet::new();
    let mut extra: Vec<Premise> = Vec::new();
    let mut conclusion = Vec::with_capacity(rule.conclusion().len());
    for e in rule.conclusion() {
        conclusion.push(rewrite(e, &mut seen, &mut extra, &mut new_rule, report));
    }
    *new_rule.conclusion_mut() = conclusion;
    let premises = new_rule.premises_mut();
    premises.extend(extra);
    premises.extend(rule.premises().iter().cloned());
    new_rule
}

/// Rewrites one conclusion expression: hoists function calls and renames
/// repeated variables, accumulating equality premises.
fn rewrite(
    e: &TermExpr,
    seen: &mut BTreeSet<VarId>,
    extra: &mut Vec<Premise>,
    rule: &mut Rule,
    report: &mut PreprocessReport,
) -> TermExpr {
    match e {
        TermExpr::Var(x) => {
            if seen.insert(*x) {
                e.clone()
            } else {
                report.nonlinear_occurrences += 1;
                let name = format!("{}'", rule.var_names()[x.index()]);
                let ty = rule.var_types()[x.index()].clone();
                let fresh = rule.add_var(fresh_name(rule, name), ty);
                // t1 = t1'  (original on the left, as in the paper)
                extra.push(Premise::Eq {
                    lhs: TermExpr::Var(*x),
                    rhs: TermExpr::Var(fresh),
                    negated: false,
                });
                TermExpr::Var(fresh)
            }
        }
        TermExpr::NatLit(_) | TermExpr::BoolLit(_) => e.clone(),
        TermExpr::Succ(inner) => TermExpr::succ(rewrite(inner, seen, extra, rule, report)),
        TermExpr::Ctor(c, args) => TermExpr::Ctor(
            *c,
            args.iter()
                .map(|a| rewrite(a, seen, extra, rule, report))
                .collect(),
        ),
        TermExpr::Fun(_, _) => {
            report.hoisted_calls += 1;
            let fresh = rule.add_var(fresh_name(rule, "m".to_string()), None);
            // n * n = m  (the call on the left, as in the paper)
            extra.push(Premise::Eq {
                lhs: e.clone(),
                rhs: TermExpr::Var(fresh),
                negated: false,
            });
            TermExpr::Var(fresh)
        }
    }
}

fn fresh_name(rule: &Rule, base: String) -> String {
    if !rule.var_names().contains(&base) {
        return base;
    }
    let mut i = 1;
    loop {
        let candidate = format!("{base}{i}");
        if !rule.var_names().contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleBuilder;
    use indrel_term::TypeExpr;

    #[test]
    fn linear_rules_untouched() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        let le = env
            .reserve("le", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("le_S");
        let n = b.var("n", TypeExpr::Nat);
        let m = b.var("m", TypeExpr::Nat);
        b.premise_rel(le, vec![TermExpr::Var(n), TermExpr::Var(m)]);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::succ(TermExpr::Var(m))]);
        env.relation_mut(le).rules_mut().push(rule);
        let (out, report) = preprocess_relation(&u, &env, env.relation(le)).unwrap();
        assert!(report.is_trivial());
        assert_eq!(out.rules()[0].premises().len(), 1);
        assert_eq!(out.rules()[0].num_vars(), 2);
    }

    #[test]
    fn nonlinear_var_renamed_with_equality() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        // eq_nat n n  (reflexivity with a non-linear conclusion)
        let r = env
            .reserve("eq_nat", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("refl");
        let n = b.var("n", TypeExpr::Nat);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(n)]);
        env.relation_mut(r).rules_mut().push(rule);
        let (out, report) = preprocess_relation(&u, &env, env.relation(r)).unwrap();
        assert_eq!(report.nonlinear_occurrences, 1);
        let rule = &out.rules()[0];
        assert_eq!(rule.num_vars(), 2);
        assert_eq!(rule.var_names()[1], "n'");
        // fresh variable got the original's type
        assert_eq!(rule.var_types()[1], Some(TypeExpr::Nat));
        assert_eq!(rule.conclusion()[0], TermExpr::var(0));
        assert_eq!(rule.conclusion()[1], TermExpr::var(1));
        assert!(matches!(
            rule.premises()[0],
            Premise::Eq { negated: false, .. }
        ));
    }

    #[test]
    fn function_call_hoisted() {
        let mut u = Universe::new();
        u.std_funs();
        let mult = u.fun_id("mult").unwrap();
        let mut env = RelEnv::new();
        // square_of : sq : forall n, square_of n (n * n)
        let r = env
            .reserve("square_of", vec![TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("sq");
        let n = b.var("n", TypeExpr::Nat);
        let rule = b.conclusion(vec![
            TermExpr::Var(n),
            TermExpr::Fun(mult, vec![TermExpr::Var(n), TermExpr::Var(n)]),
        ]);
        env.relation_mut(r).rules_mut().push(rule);
        let (out, report) = preprocess_relation(&u, &env, env.relation(r)).unwrap();
        assert_eq!(report.hoisted_calls, 1);
        let rule = &out.rules()[0];
        assert_eq!(rule.num_vars(), 2);
        // conclusion is now square_of n m
        assert_eq!(rule.conclusion()[1], TermExpr::var(1));
        // with premise  mult n n = m
        match &rule.premises()[0] {
            Premise::Eq { lhs, rhs, negated } => {
                assert!(!negated);
                assert!(matches!(lhs, TermExpr::Fun(_, _)));
                assert_eq!(*rhs, TermExpr::var(1));
            }
            other => panic!("expected Eq premise, got {other:?}"),
        }
        // inference filled in the fresh variable's type
        assert_eq!(rule.var_types()[1], Some(TypeExpr::Nat));
    }

    #[test]
    fn nonlinear_across_arguments() {
        let u = Universe::new();
        let mut env = RelEnv::new();
        let mut u2 = Universe::new();
        let pairdt = u2.std_pair();
        let _ = pairdt;
        // Use a plain two-argument relation with tripled variable.
        let r = env
            .reserve("triple", vec![TypeExpr::Nat, TypeExpr::Nat, TypeExpr::Nat])
            .unwrap();
        let mut b = RuleBuilder::new("t");
        let n = b.var("n", TypeExpr::Nat);
        let rule = b.conclusion(vec![TermExpr::Var(n), TermExpr::Var(n), TermExpr::Var(n)]);
        env.relation_mut(r).rules_mut().push(rule);
        let (out, report) = preprocess_relation(&u, &env, env.relation(r)).unwrap();
        assert_eq!(report.nonlinear_occurrences, 2);
        let rule = &out.rules()[0];
        assert_eq!(rule.num_vars(), 3);
        assert_eq!(rule.premises().len(), 2);
        // conclusion variables are pairwise distinct now
        let vars: Vec<_> = rule
            .conclusion()
            .iter()
            .flat_map(|e| e.variables())
            .collect();
        let mut dedup = vars.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(vars.len(), dedup.len());
    }
}
