//! Translation validation over the Software Foundations corpus: every
//! derived checker (and a selection of producers) earns a certificate
//! against the reference semantics, on bounded domains.

use indrel::core::{LibraryBuilder, Mode};
use indrel::validate::{ValidationParams, Validator};

fn small_params() -> ValidationParams {
    ValidationParams {
        arg_size: 3,
        max_fuel: 10,
        ref_depth: 10,
        value_bound: 4,
        gen_samples: 15,
        seed: 99,
    }
}

/// Checker certificates for the nat-flavoured LF relations.
#[test]
fn lf_nat_checkers_validate() {
    let (u, env) = indrel::corpus::corpus_env();
    let names = [
        "ev",
        "ev'",
        "le",
        "lt",
        "ge",
        "eq_nat",
        "square_of",
        "next_nat",
        "next_ev",
        "total_relation",
        "empty_relation",
        "collatz_holds_for",
    ];
    let mut b = LibraryBuilder::new(u, env);
    let ids: Vec<_> = names
        .iter()
        .map(|n| {
            let id = b.env().rel_id(n).unwrap();
            b.derive_checker(id).unwrap();
            id
        })
        .collect();
    let v = Validator::with_params(b.build(), small_params()).unwrap();
    for (name, id) in names.iter().zip(ids) {
        let cert = v.validate_checker(id);
        assert!(cert.is_valid(), "{name}: {cert}");
    }
}

/// Checker certificates for the list-flavoured LF relations.
#[test]
fn lf_list_checkers_validate() {
    let (u, env) = indrel::corpus::corpus_env();
    let names = [
        "in_list",
        "subseq",
        "pal",
        "nostutter",
        "merge",
        "repeats",
        "nodup",
    ];
    let mut b = LibraryBuilder::new(u, env);
    let ids: Vec<_> = names
        .iter()
        .map(|n| {
            let id = b.env().rel_id(n).unwrap();
            b.derive_checker(id).unwrap();
            id
        })
        .collect();
    let v = Validator::with_params(b.build(), small_params()).unwrap();
    for (name, id) in names.iter().zip(ids) {
        let cert = v.validate_checker(id);
        assert!(cert.is_valid(), "{name}: {cert}");
    }
}

/// Regular-expression matching: the `IndProp` centerpiece. The derived
/// checker enumerates string splits for `Cat`/`Star`, so keep the fuel
/// small — the split space is `O(2^fuel)`.
#[test]
fn exp_match_checker_validates() {
    let (u, env) = indrel::corpus::corpus_env();
    let mut b = LibraryBuilder::new(u, env);
    let id = b.env().rel_id("exp_match").unwrap();
    b.derive_checker(id).unwrap();
    let params = ValidationParams {
        arg_size: 3,
        max_fuel: 6,
        ref_depth: 8,
        value_bound: 4,
        gen_samples: 5,
        seed: 7,
    };
    let v = Validator::with_params(b.build(), params).unwrap();
    let cert = v.validate_checker(id);
    assert!(cert.is_valid(), "{cert}");
}

/// Producer certificates: enumerators must be exactly the satisfying
/// output sets, generators must be sound.
#[test]
fn producer_certificates() {
    let (u, env) = indrel::corpus::corpus_env();
    let mut b = LibraryBuilder::new(u, env);
    let le = b.env().rel_id("le").unwrap();
    let ev = b.env().rel_id("ev").unwrap();
    let in_list = b.env().rel_id("in_list").unwrap();
    let m_le = Mode::producer(2, &[1]);
    let m_ev = Mode::producer(1, &[0]);
    let m_in = Mode::producer(2, &[0]);
    b.derive_producer(le, m_le.clone()).unwrap();
    b.derive_producer(ev, m_ev.clone()).unwrap();
    b.derive_producer(in_list, m_in.clone()).unwrap();
    let v = Validator::with_params(b.build(), small_params()).unwrap();
    for (name, id, mode) in [
        ("le", le, &m_le),
        ("ev", ev, &m_ev),
        ("in_list", in_list, &m_in),
    ] {
        let cert = v.validate_enumerator(id, mode);
        assert!(cert.is_valid(), "{name} enum: {cert}");
        let cert = v.validate_generator(id, mode);
        assert!(cert.is_valid(), "{name} gen: {cert}");
    }
}

/// The IMP evaluators validate on tiny domains (deep relations: keep
/// the sweep small).
#[test]
fn imp_lookup_validates() {
    let (u, env) = indrel::corpus::corpus_env();
    let mut b = LibraryBuilder::new(u, env);
    let lookup = b.env().rel_id("lookupR").unwrap();
    b.derive_checker(lookup).unwrap();
    let params = ValidationParams {
        arg_size: 3,
        max_fuel: 8,
        ref_depth: 8,
        value_bound: 3,
        gen_samples: 5,
        seed: 3,
    };
    let v = Validator::with_params(b.build(), params).unwrap();
    let cert = v.validate_checker(lookup);
    assert!(cert.is_valid(), "{cert}");
}

/// The case-study relations validate too.
#[test]
fn case_study_checkers_validate() {
    let bst = indrel::bst::Bst::new();
    let v = Validator::with_params(bst.library().clone(), small_params()).unwrap();
    let cert = v.validate_checker(bst.relation());
    assert!(cert.is_valid(), "bst: {cert}");

    let ifc = indrel::ifc::Ifc::new();
    let params = ValidationParams {
        arg_size: 4,
        ..small_params()
    };
    let v = Validator::with_params(ifc.library().clone(), params).unwrap();
    let cert = v.validate_checker(ifc.indist_relation());
    assert!(cert.is_valid(), "indist: {cert}");
}
