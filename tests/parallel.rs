//! Parallel-runner determinism, end to end: the BST case study run
//! through the parallel engine must produce byte-identical reports at
//! every worker count — including under injected faults — and failing
//! runs must hand back a working `(seed, index)` reproduction token.

use indrel::bst::Bst;
use indrel::pbt::chaos::{silence_panics, Chaos};
use indrel::prelude::*;

const BST_FUEL: u64 = 64;

/// Renders the BST insertion-preservation property as a report string,
/// with the configured `insert` (correct or mutated) and parallelism.
/// Workers fork private sessions off one shared handle.
fn render(parallelism: Parallelism, buggy: bool, tests: usize) -> String {
    let shared = Bst::new().shared();
    let report = Runner::new(11)
        .with_size(6)
        .with_parallelism(parallelism)
        .run_par(tests, || {
            let gen_bst = shared.fork();
            let check_bst = shared.fork();
            (
                move |size, rng: &mut dyn rand::RngCore| {
                    let t = gen_bst.handwritten_gen(0, 24, size, rng);
                    let x = rand::Rng::gen_range(rng, 1..24u64);
                    Some(vec![Value::nat(x), t])
                },
                move |args: &[Value]| {
                    let x = args[0].as_nat().unwrap();
                    let t2 = if buggy {
                        check_bst.insert_buggy(x, &args[1])
                    } else {
                        check_bst.insert(x, &args[1])
                    };
                    TestOutcome::from_check(check_bst.derived_check(0, 24, &t2, BST_FUEL))
                },
            )
        });
    report.to_string()
}

#[test]
fn bst_reports_identical_across_worker_counts() {
    let off = render(Parallelism::Off, false, 600);
    assert!(off.contains("+++ Passed"), "{off}");
    assert_eq!(off, render(Parallelism::Fixed(2), false, 600));
    assert_eq!(off, render(Parallelism::Fixed(8), false, 600));
}

#[test]
fn bst_failing_reports_identical_across_worker_counts() {
    let off = render(Parallelism::Off, true, 2000);
    assert!(off.contains("*** Failed"), "mutation must be found: {off}");
    assert!(off.contains("repro:     seed=11"), "{off}");
    assert_eq!(off, render(Parallelism::Fixed(2), true, 2000));
    assert_eq!(off, render(Parallelism::Fixed(8), true, 2000));
}

#[test]
fn repro_token_replays_the_parallel_counterexample() {
    let shared = Bst::new().shared();
    let make = || {
        let gen_bst = shared.fork();
        let check_bst = shared.fork();
        (
            move |size, rng: &mut dyn rand::RngCore| {
                let t = gen_bst.handwritten_gen(0, 24, size, rng);
                let x = rand::Rng::gen_range(rng, 1..24u64);
                Some(vec![Value::nat(x), t])
            },
            move |args: &[Value]| {
                let x = args[0].as_nat().unwrap();
                let t2 = check_bst.insert_buggy(x, &args[1]);
                TestOutcome::from_check(check_bst.derived_check(0, 24, &t2, BST_FUEL))
            },
        )
    };
    let runner = Runner::new(11)
        .with_size(6)
        .with_parallelism(Parallelism::Fixed(4));
    let report = runner.run_par(2000, make);
    let (cex, _) = report.failed.clone().expect("mutation found");
    let (seed, index) = report.reproduction().expect("token on failing report");
    assert_eq!(seed, 11);

    // Replaying the token — even on a runner configured with a
    // different worker count — yields the same counterexample.
    let (mut gen, mut prop) = make();
    let (input, outcome) = Runner::new(seed)
        .with_size(6)
        .repro_index(index, &mut gen, &mut prop)
        .expect("slot resolves");
    assert_eq!(input, cex);
    assert_eq!(outcome, TestOutcome::Fail);
}

#[test]
fn chaos_parallel_run_is_crash_isolated_and_deterministic() {
    // 1% injected checker panics over a parallel BST run: every crash
    // is caught, the run completes, and the report is identical at
    // every worker count (fault schedules key on the slot, not on
    // wall-clock arrival order).
    let _quiet = silence_panics();
    let run = |parallelism: Parallelism| {
        let shared = Bst::new().shared();
        Runner::new(5)
            .with_size(6)
            .with_parallelism(parallelism)
            .run_par(1000, || {
                let chaos = Chaos::new(42).with_panic_rate(0.01).with_none_rate(0.02);
                let gen_bst = shared.fork();
                let check_bst = shared.fork();
                let gen = chaos.wrap_gen_par(move |size, rng: &mut dyn rand::RngCore| {
                    let t = gen_bst.handwritten_gen(0, 24, size, rng);
                    let x = rand::Rng::gen_range(rng, 1..24u64);
                    Some(vec![Value::nat(x), t])
                });
                let prop = chaos.wrap_property_par(move |args: &[Value]| {
                    let x = args[0].as_nat().unwrap();
                    let t2 = check_bst.insert(x, &args[1]);
                    TestOutcome::from_check(check_bst.derived_check(0, 24, &t2, BST_FUEL))
                });
                (gen, prop)
            })
    };
    let off = run(Parallelism::Off);
    assert!(off.crashed > 0, "~10 crashes expected at 1%");
    assert!(off.failed.is_none(), "no real counterexample injected");
    assert_eq!(off.passed + off.crashed, 1000, "every slot resolved");
    let par = run(Parallelism::Fixed(4));
    assert_eq!(off.to_string(), par.to_string());
    assert_eq!(off.crashed, par.crashed);
    assert_eq!(
        off.first_crash.as_ref().map(|c| c.test),
        par.first_crash.as_ref().map(|c| c.test)
    );
}
