//! Robustness of the execution layer: the panic-free `try_*` entry
//! points agree with the panicking APIs wherever those succeed, budget
//! cut-offs are structured and deterministic, deadlines actually cut
//! off exponential searches, and the PBT runner survives crashing
//! checkers (fault injection via `indrel::pbt::chaos`).

use indrel::pbt::chaos::{silence_panics, Chaos};
use indrel::prelude::*;
use indrel::term::enumerate::tuples_up_to;
use proptest::prelude::*;
use std::cell::OnceCell;
use std::time::{Duration, Instant};

/// The exponential workload: a proof of `twin n` has `2^n` leaves, so
/// small budgets and deadlines bite at modest `n` while the recursion
/// depth stays `O(n)`.
fn twin_lib() -> (Library, RelId) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel twin : nat :=
          | t0 : twin 0
          | tS : forall n, twin n -> twin n -> twin (S n)
          .",
    )
    .unwrap();
    let twin = env.rel_id("twin").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(twin).unwrap();
    (b.build(), twin)
}

thread_local! {
    static LE_LIB: OnceCell<(Library, RelId)> = const { OnceCell::new() };
    static TWIN_LIB: OnceCell<(Library, RelId)> = const { OnceCell::new() };
}

fn with_le<R>(f: impl FnOnce(&Library, RelId) -> R) -> R {
    LE_LIB.with(|cell| {
        let (lib, le) = cell.get_or_init(|| {
            let mut u = Universe::new();
            let mut env = RelEnv::new();
            parse_program(
                &mut u,
                &mut env,
                r"rel le : nat nat :=
                  | le_n : forall n, le n n
                  | le_S : forall n m, le n m -> le n (S m)
                  .",
            )
            .unwrap();
            let le = env.rel_id("le").unwrap();
            let mut b = LibraryBuilder::new(u, env);
            b.derive_checker(le).unwrap();
            (b.build(), le)
        });
        f(lib, *le)
    })
}

fn with_twin<R>(f: impl FnOnce(&Library, RelId) -> R) -> R {
    TWIN_LIB.with(|cell| {
        let (lib, twin) = cell.get_or_init(twin_lib);
        f(lib, *twin)
    })
}

/// `try_check` with an unlimited budget is `check`, on every corpus
/// relation with a derivable checker and every small argument tuple.
#[test]
fn try_check_agrees_with_check_on_corpus() {
    let (u, env) = indrel::corpus::corpus_env();
    let names = [
        "ev",
        "ev'",
        "le",
        "lt",
        "ge",
        "eq_nat",
        "square_of",
        "next_nat",
        "next_ev",
        "total_relation",
        "empty_relation",
        "in_list",
        "subseq",
        "pal",
        "nostutter",
        "nodup",
    ];
    let mut b = LibraryBuilder::new(u.clone(), env.clone());
    let ids: Vec<RelId> = names
        .iter()
        .map(|n| {
            let id = env.rel_id(n).unwrap();
            b.derive_checker(id).unwrap();
            id
        })
        .collect();
    let lib = b.build();
    for (name, &id) in names.iter().zip(&ids) {
        let tys = env.relation(id).arg_types().to_vec();
        for args in tuples_up_to(&u, &tys, 3) {
            for fuel in [0, 2, 6] {
                assert_eq!(
                    lib.try_check(id, fuel, fuel, &args, Budget::unlimited()),
                    Ok(lib.check(id, fuel, fuel, &args)),
                    "{name} {args:?} fuel {fuel}"
                );
            }
        }
    }
}

proptest! {
    /// Sampled agreement with a *finite* (but ample) budget: a budget
    /// big enough to finish must not change the verdict.
    #[test]
    fn ample_budget_does_not_change_verdicts(n in 0u64..40, m in 0u64..40) {
        with_le(|lib, le| {
            let fuel = n.max(m) + 2;
            let args = [Value::nat(n), Value::nat(m)];
            let plain = lib.check(le, fuel, fuel, &args);
            let budgeted = lib.try_check(le, fuel, fuel, &args, Budget::unlimited().with_steps(100_000));
            prop_assert_eq!(budgeted, Ok(plain));
            Ok(())
        })?;
    }

    /// Budget exhaustion is deterministic: the same seed-free workload
    /// under the same budget yields the same outcome, twice, and an
    /// exhausted step budget is always the structured error — never a
    /// panic, never a bogus verdict.
    #[test]
    fn budget_exhaustion_is_deterministic(steps in 1u64..200) {
        with_twin(|lib, twin| {
            let budget = Budget::unlimited().with_steps(steps);
            let args = [Value::nat(16)];
            let first = lib.try_check(twin, 20, 20, &args, budget);
            let second = lib.try_check(twin, 20, 20, &args, budget);
            prop_assert_eq!(&first, &second);
            if let Err(e) = first {
                prop_assert_eq!(e, ExecError::BudgetExhausted { resource: Resource::Steps });
            }
            Ok(())
        })?;
    }
}

/// The ISSUE acceptance case: an exhausted step budget returns
/// `Err(BudgetExhausted)` — it never panics and never hangs.
#[test]
fn exhausted_step_budget_is_a_structured_error() {
    let (lib, twin) = twin_lib();
    let r = lib.try_check(
        twin,
        50,
        50,
        &[Value::nat(40)],
        Budget::unlimited().with_steps(10_000),
    );
    assert_eq!(
        r,
        Err(ExecError::BudgetExhausted {
            resource: Resource::Steps
        })
    );
}

/// A deadline cuts off a search that would otherwise take `2^60`
/// steps, well before the test harness would time out.
#[test]
fn deadline_cuts_off_exponential_search() {
    let (lib, twin) = twin_lib();
    let start = Instant::now();
    let r = lib.try_check(
        twin,
        64,
        64,
        &[Value::nat(60)],
        Budget::unlimited().with_deadline(Duration::from_millis(50)),
    );
    assert_eq!(r, Err(ExecError::Deadline));
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline must cut off promptly, took {:?}",
        start.elapsed()
    );
}

/// Caller errors are structured, not panics: a missing instance and a
/// wrong argument count both come back as `Err`.
#[test]
fn caller_errors_are_structured() {
    let (lib, twin) = twin_lib();
    assert_eq!(
        lib.try_check(twin, 5, 5, &[], Budget::unlimited()),
        Err(ExecError::ArityMismatch {
            rel: "twin".into(),
            expected: 1,
            got: 0
        })
    );
    let mode = Mode::producer(1, &[0]);
    let err = lib
        .try_enumerate(twin, &mode, 5, 5, &[], Budget::unlimited())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::NoInstance {
            kind: InstanceKind::Enumerator,
            rel: "twin".into(),
            mode: Some(mode.to_string()),
        }
    );
    assert!(!lib.has_enumerator(twin, &mode));
    assert!(lib.has_checker(twin));
}

/// The end-to-end fault-injection acceptance scenario: a PBT run over
/// a *derived* checker with 1% injected checker panics completes every
/// requested test, reports the crash count and the first crashing
/// input, and exits cleanly.
#[test]
fn chaos_run_with_injected_panics_completes() {
    with_le(|lib, le| {
        let chaos = Chaos::new(0xC4A0).with_panic_rate(0.01);
        let _quiet = silence_panics();
        let report = Runner::new(7).with_size(30).run(
            1000,
            chaos.wrap_gen(|size, rng| {
                let n = rand::Rng::gen_range(rng, 0..=size);
                let m = rand::Rng::gen_range(rng, 0..=size);
                Some(vec![Value::nat(n), Value::nat(m.max(n))])
            }),
            chaos.wrap_property(|args| TestOutcome::from_check(lib.check(le, 40, 40, args))),
        );
        assert_eq!(
            report.passed + report.crashed,
            1000,
            "all requested tests executed: {report}"
        );
        assert!(report.crashed > 0, "1% injection must crash some tests");
        assert!(report.failed.is_none(), "le n max(n,m) always holds");
        let crash = report.first_crash.expect("first crash recorded");
        assert!(crash.input.is_some(), "checker crash keeps its input");
        assert!(crash.message.contains("injected checker panic"));
    });
}

/// A budgeted PBT run over a derived generator both makes progress and
/// stops on the budget, with the spend accounted in the report.
#[test]
fn budgeted_pbt_run_accounts_spend() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel le : nat nat :=
          | le_n : forall n, le n n
          | le_S : forall n m, le n m -> le n (S m)
          .",
    )
    .unwrap();
    let le = env.rel_id("le").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(le).unwrap();
    b.derive_producer(le, Mode::producer(2, &[0])).unwrap();
    let lib = b.build();
    let mode = Mode::producer(2, &[0]);
    let report = Runner::new(11)
        .with_budget(Budget::unlimited().with_steps(200))
        .run(
            10_000,
            |size, rng| {
                let bound = Value::nat(rand::Rng::gen_range(rng, 0..=size));
                lib.generate(le, &mode, 12, 12, std::slice::from_ref(&bound), rng)
                    .map(|outs| vec![outs[0].clone(), bound])
            },
            |args| TestOutcome::from_check(lib.check(le, 14, 14, args)),
        );
    assert!(report.passed > 0, "some tests ran within budget");
    assert_eq!(
        report.stopped,
        Some(Exhaustion::Budget(Resource::Steps)),
        "{report}"
    );
    assert_eq!(report.spent.steps, 200);
}
