//! Properties of the monotonicity-justified memo table (tabling).
//!
//! The table caches decided verdicts only, so a memoized session must
//! be observationally identical to a fresh library on every input at
//! every fuel — including sessions that accumulate cached verdicts
//! across many queries at *different* fuels, which is exactly where an
//! unsound monotonicity argument would show up. `None` (out of fuel)
//! is not fuel-monotone and must never be cached.

use indrel::bst::BST_SOURCE;
use indrel::prelude::*;
use indrel::stlc::Stlc;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::cell::OnceCell;

// ---------------------------------------------------------------------
// Fixture: the fully derived BST pipeline (`bst` with derived ordering
// relations), a long-lived memoized session, and a tree generator.
// ---------------------------------------------------------------------

thread_local! {
    static BST_LIB: OnceCell<(Library, Library, RelId, CtorId, CtorId)> =
        const { OnceCell::new() };
}

/// `f(plain, memoized, bst, leaf, node)` — the memoized session is
/// shared across all proptest cases, so verdicts cached by one case
/// (at one fuel) are candidate answers for every later case.
fn with_bst<R>(f: impl FnOnce(&Library, &Library, RelId, CtorId, CtorId) -> R) -> R {
    BST_LIB.with(|cell| {
        let (plain, memoized, bst, leaf, node) = cell.get_or_init(|| {
            let mut u = Universe::new();
            let mut env = RelEnv::new();
            parse_program(&mut u, &mut env, BST_SOURCE).unwrap();
            let bst = env.rel_id("bst").unwrap();
            let leaf = u.ctor_id("Leaf").unwrap();
            let node = u.ctor_id("Node").unwrap();
            let mut b = LibraryBuilder::new(u, env);
            b.derive_checker(bst).unwrap();
            let plain = b.build();
            let memoized = plain.fork().with_memo();
            (plain, memoized, bst, leaf, node)
        });
        f(plain, memoized, *bst, *leaf, *node)
    })
}

/// An arbitrary tree over small keys — *not* bounds-respecting, so the
/// corpus mixes valid and invalid BSTs and both verdicts occur.
fn arbitrary_tree(leaf: CtorId, node: CtorId, depth: u64, rng: &mut SmallRng) -> Value {
    if depth == 0 || rng.gen_range(0..4u32) == 0 {
        return Value::ctor(leaf, vec![]);
    }
    Value::ctor(
        node,
        vec![
            Value::nat(rng.gen_range(0..16u64)),
            arbitrary_tree(leaf, node, depth - 1, rng),
            arbitrary_tree(leaf, node, depth - 1, rng),
        ],
    )
}

proptest! {
    // A session with tabling on decides exactly what a fresh library
    // decides, at every fuel — even though the session keeps verdicts
    // cached at other fuels from earlier cases. This is the user-facing
    // statement of joint fuel monotonicity.
    #[test]
    fn memoized_session_agrees_with_fresh_library(seed in 0u64..1u64 << 32) {
        with_bst(|plain, memoized, bst, leaf, node| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let t = arbitrary_tree(leaf, node, 4, &mut rng);
            // Vary which fuel a tree is first checked at, so hits occur
            // both above and at the fuel that populated the entry.
            let fuels: &[u64] = if seed % 2 == 0 { &[2, 5, 9, 64] } else { &[64, 9, 5, 2] };
            for &fuel in fuels {
                let args = [Value::nat(0), Value::nat(16), t.clone()];
                prop_assert_eq!(
                    memoized.check(bst, fuel, fuel, &args),
                    plain.check(bst, fuel, fuel, &args),
                    "fuel {} seed {}", fuel, seed
                );
            }
            Ok(())
        })?;
    }
}

#[test]
fn cross_fuel_hits_occur_and_stay_correct() {
    with_bst(|plain, _, bst, leaf, node| {
        let memoized = plain.fork().with_memo();
        let mut rng = SmallRng::seed_from_u64(41);
        let corpus: Vec<Value> = (0..120)
            .map(|_| arbitrary_tree(leaf, node, 4, &mut rng))
            .collect();
        // First sweep at a moderate fuel populates the table; the
        // second sweep at a strictly larger fuel may answer from it
        // (monotonicity: a verdict decided at fuel f holds at f' >= f).
        for t in &corpus {
            let args = [Value::nat(0), Value::nat(16), t.clone()];
            memoized.check(bst, 16, 16, &args);
        }
        let mut hits_before = memoized.memo_stats().hits;
        for t in &corpus {
            let args = [Value::nat(0), Value::nat(16), t.clone()];
            let got = memoized.check(bst, 64, 64, &args);
            let want = plain.check(bst, 64, 64, &args);
            assert_eq!(got, want, "verdict reused across fuels must agree");
        }
        let stats = memoized.memo_stats();
        assert!(
            stats.hits > hits_before,
            "second sweep at higher fuel should reuse entries: {stats:?}"
        );
        hits_before = stats.hits;
        // A third sweep at the *same* fuel as the first is all hits or
        // honest misses, never a wrong answer.
        for t in &corpus {
            let args = [Value::nat(0), Value::nat(16), t.clone()];
            assert_eq!(
                memoized.check(bst, 16, 16, &args),
                plain.check(bst, 16, 16, &args),
            );
        }
        assert!(memoized.memo_stats().hits > hits_before);
    });
}

#[test]
fn none_verdicts_are_never_cached() {
    with_bst(|plain, _, bst, leaf, node| {
        let memoized = plain.fork().with_memo();
        // A comb deep enough that fuel 3 always runs out.
        let mut t = Value::ctor(leaf, vec![]);
        for x in (1..12u64).rev() {
            t = Value::ctor(node, vec![Value::nat(x), Value::ctor(leaf, vec![]), t]);
        }
        let args = [Value::nat(0), Value::nat(16), t];
        assert_eq!(memoized.check(bst, 3, 3, &args), None);
        // The first query caches whatever *decided* subgoals it met
        // (`le'`/`lt'` premises that fit in their sub-fuel). Repeating
        // the same out-of-fuel query must re-search the top level every
        // time — if the `None` had been stored, the lookup would start
        // answering `Some` — and must add no further entries.
        let after_first = memoized.memo_stats();
        assert!(
            after_first.none_skipped > 0,
            "the skip should be observable in the counters: {after_first:?}"
        );
        for _ in 0..9 {
            assert_eq!(memoized.check(bst, 3, 3, &args), None);
        }
        let stats = memoized.memo_stats();
        assert_eq!(
            stats.entries, after_first.entries,
            "repeated out-of-fuel queries must not grow the table: {stats:?}"
        );
        assert!(
            stats.none_skipped >= after_first.none_skipped + 9,
            "each repeat re-searches and re-skips: {stats:?}"
        );
        // Once fuel suffices the verdict is decided, cached, and agrees.
        assert_eq!(
            memoized.check(bst, 64, 64, &args),
            plain.check(bst, 64, 64, &args)
        );
        assert_eq!(memoized.check(bst, 64, 64, &args), Some(true));
    });
}

#[test]
fn memoized_stlc_suite_matches_plain() {
    let stlc = Stlc::new();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut corpus: Vec<Vec<Value>> = Vec::new();
    while corpus.len() < 60 {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 4, &mut rng) {
            corpus.push(vec![stlc.ctx(&[]), e, ty]);
        }
    }
    let plain = stlc.library();
    let memoized = plain.fork().with_memo();
    let rel = stlc.typing_relation();
    // Two passes in one session, the multi-property-suite shape: the
    // second pass is mostly hits and must still agree pointwise.
    for _ in 0..2 {
        for args in &corpus {
            for fuel in [6, 40] {
                assert_eq!(
                    memoized.check(rel, fuel, fuel, args),
                    plain.check(rel, fuel, fuel, args),
                );
            }
        }
    }
    let stats = memoized.memo_stats();
    assert!(
        stats.hits > 0,
        "the second pass should reuse entries: {stats:?}"
    );
}
