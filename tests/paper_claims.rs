//! Tests pinning the specific claims and examples of the paper.

use indrel::prelude::*;

/// §2: the derived checker for `typing` — including the `App` case the
/// handwritten sketch omits — decides the examples of the paper.
#[test]
fn section2_stlc_typing() {
    let stlc = indrel::stlc::Stlc::new();
    // Con n : N
    assert_eq!(
        stlc.derived_check(&[], &stlc.con(3), &stlc.ty_n(), 20),
        Some(true)
    );
    // Abs N (Var 0) : N -> N
    let id = stlc.abs(stlc.ty_n(), stlc.var(0));
    let nn = stlc.ty_arrow(stlc.ty_n(), stlc.ty_n());
    assert_eq!(stlc.derived_check(&[], &id, &nn, 20), Some(true));
    // App (the case that needs enumeration of the argument type):
    let e = stlc.app(id, stlc.con(7));
    assert_eq!(stlc.derived_check(&[], &e, &stlc.ty_n(), 30), Some(true));
    assert_eq!(stlc.derived_check(&[], &e, &nn, 30), Some(false));
}

/// §3.1 `square_of`: function calls in conclusions are hoisted into
/// equality premises.
#[test]
fn section31_square_of() {
    let (u, env) = indrel::corpus::corpus_env();
    let sq = env.rel_id("square_of").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(sq).unwrap();
    b.derive_producer(sq, Mode::producer(2, &[1])).unwrap();
    let lib = b.build();
    assert_eq!(
        lib.check(sq, 4, 4, &[Value::nat(12), Value::nat(144)]),
        Some(true)
    );
    assert_eq!(
        lib.check(sq, 4, 4, &[Value::nat(12), Value::nat(143)]),
        Some(false)
    );
    let outs = lib
        .enumerate(sq, &Mode::producer(2, &[1]), 1, 1, &[Value::nat(9)])
        .values();
    assert_eq!(outs, vec![vec![Value::nat(81)]]);
}

/// §5.1: the `zero` relation — checkers cannot be complete for
/// negation; `None` forever on any positive input.
#[test]
fn section51_zero_incompleteness() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel zero : nat :=
          | Zero : zero 0
          | NonZero : forall n, zero (S n) -> zero n
          .",
    )
    .unwrap();
    let zero = env.rel_id("zero").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(zero).unwrap();
    let lib = b.build();
    assert_eq!(lib.check(zero, 100, 100, &[Value::nat(0)]), Some(true));
    for fuel in [1u64, 10, 100, 300] {
        assert_eq!(lib.check(zero, fuel, fuel, &[Value::nat(7)]), None);
    }
}

/// §5.1 monotonicity, stated over the fuel and checked on a sweep.
#[test]
fn section51_monotonicity() {
    let (u, env) = indrel::corpus::corpus_env();
    let ev = env.rel_id("ev").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(ev).unwrap();
    let lib = b.build();
    for n in 0..12u64 {
        let mut definite: Option<bool> = None;
        for fuel in 0..14u64 {
            match (definite, lib.check(ev, fuel, fuel, &[Value::nat(n)])) {
                (None, Some(b)) => definite = Some(b),
                (Some(b0), Some(b1)) => assert_eq!(b0, b1, "verdict changed on {n}"),
                (_, None) => {}
            }
        }
        assert_eq!(definite, Some(n % 2 == 0));
    }
}

/// §8: mutually recursive *instances* are rejected (like the paper's
/// implementation), with a clear error.
#[test]
fn section8_instance_cycles_are_rejected() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    // a and b mutually refer with existentials that force producer
    // instances of each other in both directions.
    parse_program(
        &mut u,
        &mut env,
        r"
        rel a : nat :=
        | a0 : a 0
        .
        rel b : nat :=
        | b0 : b 0
        .
        ",
    )
    .unwrap();
    // A direct self-cycle through a negated self premise: deriving the
    // checker for `selfneg` needs the checker for `selfneg`.
    parse_program(
        &mut u,
        &mut env,
        r"
        rel selfneg : nat :=
        | s : forall n, ~ (selfneg n) -> selfneg (S n)
        .
        ",
    )
    .unwrap();
    let selfneg = env.rel_id("selfneg").unwrap();
    let mut builder = LibraryBuilder::new(u, env);
    let err = builder.derive_checker(selfneg).unwrap_err();
    assert!(matches!(err, DeriveError::InstanceCycle { .. }), "{err}");
}

/// §8 (lifted limitation): multiple producer outputs work here.
#[test]
fn section8_multiple_outputs_supported() {
    let (u, env) = indrel::corpus::corpus_env();
    let subseq = env.rel_id("subseq").unwrap();
    let mut b = LibraryBuilder::new(u.clone(), env);
    let mode = Mode::producer(2, &[0, 1]);
    b.derive_producer(subseq, mode.clone()).unwrap();
    let lib = b.build();
    let pairs = lib.enumerate(subseq, &mode, 4, 4, &[]).values();
    assert!(!pairs.is_empty());
    // Soundness of each produced pair: first is a subsequence of the
    // second (checked natively).
    for pair in &pairs {
        let xs = u.list_elems(&pair[0]).unwrap();
        let ys = u.list_elems(&pair[1]).unwrap();
        let mut it = ys.iter();
        let ok = xs.iter().all(|x| it.any(|y| y == x));
        assert!(ok, "{pair:?}");
    }
}

/// §8: the iterative-deepening `decide` driver gives decision-procedure
/// ergonomics on complete checkers while staying honest (`None`) on
/// semi-decidable instances.
#[test]
fn section8_decide_driver() {
    let (u, env) = indrel::corpus::corpus_env();
    let ev = env.rel_id("ev").unwrap();
    let mut b = LibraryBuilder::new(u.clone(), env.clone());
    b.derive_checker(ev).unwrap();
    let lib = b.build();
    assert_eq!(lib.decide(ev, &[Value::nat(20)], 64), Some(true));
    assert_eq!(lib.decide(ev, &[Value::nat(21)], 64), Some(false));

    let mut u2 = Universe::new();
    let mut env2 = RelEnv::new();
    parse_program(
        &mut u2,
        &mut env2,
        r"rel zero : nat :=
          | Zero : zero 0
          | NonZero : forall n, zero (S n) -> zero n
          .",
    )
    .unwrap();
    let zero = env2.rel_id("zero").unwrap();
    let mut b2 = LibraryBuilder::new(u2, env2);
    b2.derive_checker(zero).unwrap();
    let lib2 = b2.build();
    assert_eq!(lib2.decide(zero, &[Value::nat(3)], 64), None);
}

/// Evaluation as a relation (PLF `Imp`): division makes evaluation
/// partial; the derived checker searches for the quotient witness.
#[test]
fn aeval_with_division_is_relational() {
    let (u, env) = indrel::corpus::corpus_env();
    let aevald = env.rel_id("aevalD").unwrap();
    let mut b = LibraryBuilder::new(u.clone(), env);
    b.derive_checker(aevald).unwrap();
    let lib = b.build();
    let c = |name: &str, args: Vec<Value>| Value::ctor(u.ctor_id(name).unwrap(), args);
    // (6 / 2) evaluates to 3 …
    let e = c(
        "DDiv",
        vec![
            c("DNum", vec![Value::nat(6)]),
            c("DNum", vec![Value::nat(2)]),
        ],
    );
    assert_eq!(
        lib.check(aevald, 8, 8, &[e.clone(), Value::nat(3)]),
        Some(true)
    );
    assert_eq!(lib.check(aevald, 8, 8, &[e, Value::nat(2)]), Some(false));
    // … but (1 / 0) evaluates to nothing at all.
    let bad = c(
        "DDiv",
        vec![
            c("DNum", vec![Value::nat(1)]),
            c("DNum", vec![Value::nat(0)]),
        ],
    );
    for n in 0..4u64 {
        assert_ne!(
            lib.check(aevald, 8, 8, &[bad.clone(), Value::nat(n)]),
            Some(true)
        );
    }
    // (7 / 2) doesn't evaluate either: division is exact.
    let inexact = c(
        "DDiv",
        vec![
            c("DNum", vec![Value::nat(7)]),
            c("DNum", vec![Value::nat(2)]),
        ],
    );
    assert_ne!(
        lib.check(aevald, 12, 12, &[inexact, Value::nat(3)]),
        Some(true)
    );
}

/// The three-valued conjunction of §2 short-circuits exactly as the
/// paper defines `.&&`.
#[test]
fn section2_three_valued_conjunction() {
    use indrel::producers::cand;
    assert_eq!(cand(Some(false), || panic!("lazy")), Some(false));
    assert_eq!(cand(None, || panic!("lazy")), None);
    assert_eq!(cand(Some(true), || Some(false)), Some(false));
}

/// Fuel semantics of §2: `size` bounds recursion, `top_size` feeds
/// external calls — a nested relation needs `top_size`, not `size`.
#[test]
fn section2_two_fuel_discipline() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"
        rel deep : nat :=
        | d0 : deep 0
        | dS : forall n, deep n -> deep (S n)
        .
        rel shallow : nat :=
        | s : forall n, deep n -> shallow n
        .
        ",
    )
    .unwrap();
    let shallow = env.rel_id("shallow").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(shallow).unwrap();
    let lib = b.build();
    // shallow needs only 1 step of its own recursion, but the external
    // call to `deep 9` needs top fuel ≥ 10.
    assert_eq!(lib.check(shallow, 1, 12, &[Value::nat(9)]), Some(true));
    assert_eq!(lib.check(shallow, 1, 5, &[Value::nat(9)]), None);
}
