//! Observability of the search: `SearchStats` probes are deterministic
//! (same seed + budget ⇒ byte-identical JSON export) for all three
//! execution families, arming a probe never changes results, the
//! `TraceProbe` ring keeps the newest events, and the PBT runner's
//! `RunReport` renders the full telemetry block — snapshot-tested under
//! fault injection.

use indrel::pbt::chaos::{silence_panics, Chaos};
use indrel::prelude::*;
use indrel::term::enumerate::tuples_up_to;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn le_lib() -> (Library, RelId, Universe, Vec<TypeExpr>) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel le : nat nat :=
          | le_n : forall n, le n n
          | le_S : forall n m, le n m -> le n (S m)
          .",
    )
    .unwrap();
    let le = env.rel_id("le").unwrap();
    let tys = env.relation(le).arg_types().to_vec();
    let mut b = LibraryBuilder::new(u.clone(), env);
    b.derive_checker(le).unwrap();
    b.derive_producer(le, Mode::producer(2, &[0])).unwrap();
    (b.build(), le, u, tys)
}

/// One fixed checker workload with a fresh `SearchStats` armed.
fn checker_stats_json() -> String {
    let (lib, le, u, tys) = le_lib();
    let stats = SearchStats::new();
    let _probe = lib.arm_probe(ExecProbe::stats(&stats));
    for args in tuples_up_to(&u, &tys, 5) {
        let _ = lib.check(le, 8, 8, &args);
    }
    stats.to_json()
}

/// One fixed enumerator workload with a fresh `SearchStats` armed.
fn enumerator_stats_json() -> String {
    let (lib, le, _, _) = le_lib();
    let stats = SearchStats::new();
    let _probe = lib.arm_probe(ExecProbe::stats(&stats));
    let mode = Mode::producer(2, &[0]);
    for n in 0..5u64 {
        let _ = lib
            .enumerate(le, &mode, 6, 6, &[Value::nat(n)])
            .values()
            .len();
    }
    stats.to_json()
}

/// One fixed generator workload (seeded RNG) with a fresh
/// `SearchStats` armed.
fn generator_stats_json() -> String {
    let (lib, le, _, _) = le_lib();
    let stats = SearchStats::new();
    let _probe = lib.arm_probe(ExecProbe::stats(&stats));
    let mode = Mode::producer(2, &[0]);
    let mut rng = SmallRng::seed_from_u64(0xD15E);
    for n in 0..20u64 {
        let _ = lib.generate(le, &mode, 8, 8, &[Value::nat(n % 6)], &mut rng);
    }
    stats.to_json()
}

#[test]
fn checker_stats_are_deterministic() {
    let (a, b) = (checker_stats_json(), checker_stats_json());
    assert!(a.contains("\"rules\":[{"), "stats should be non-empty: {a}");
    assert_eq!(a, b, "same workload must export byte-identical stats");
}

#[test]
fn enumerator_stats_are_deterministic() {
    let (a, b) = (enumerator_stats_json(), enumerator_stats_json());
    assert!(a.contains("\"enumerator\""), "{a}");
    assert_eq!(a, b);
}

#[test]
fn generator_stats_are_deterministic() {
    let (a, b) = (generator_stats_json(), generator_stats_json());
    assert!(a.contains("\"generator\""), "{a}");
    assert_eq!(a, b);
}

#[test]
fn arming_a_probe_never_changes_results() {
    let (lib, le, u, tys) = le_lib();
    let tuples = tuples_up_to(&u, &tys, 5);
    let unarmed: Vec<_> = tuples
        .iter()
        .map(|args| lib.check(le, 8, 8, args))
        .collect();
    let stats = SearchStats::new();
    let armed: Vec<_> = {
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        tuples
            .iter()
            .map(|args| lib.check(le, 8, 8, args))
            .collect()
    };
    assert_eq!(unarmed, armed, "probes must be observation-only");
    assert!(stats.events() > 0, "the armed pass should have recorded");
    // Guard dropped: the library is unarmed again and records nothing.
    let before = stats.events();
    let _ = lib.check(le, 8, 8, &[Value::nat(1), Value::nat(2)]);
    assert_eq!(stats.events(), before);
}

#[test]
fn trace_probe_exports_named_json_lines() {
    let (lib, le, _, _) = le_lib();
    let trace = TraceProbe::new(64);
    {
        let _probe = lib.arm_probe(ExecProbe::trace(&trace));
        let _ = lib.check(le, 8, 8, &[Value::nat(1), Value::nat(2)]);
    }
    assert!(!trace.is_empty());
    let lines = trace.to_json_lines();
    assert!(lines.contains("\"event\":\"enter\""), "{lines}");
    assert!(lines.contains("\"rel\":\"le\""), "{lines}");
    assert!(lines.contains("\"rule\":\"le_n\""), "{lines}");
}

#[test]
fn chaos_run_report_renders_full_telemetry_block() {
    let (lib, le, _, _) = le_lib();
    let chaos = Chaos::new(0xC4A0).with_panic_rate(0.01);
    let run = || {
        // The wrappers are created once per run so the deterministic
        // fault schedule advances across tests.
        let mut prop = chaos.wrap_property(|args: &[Value]| {
            let (n, m) = (args[0].as_nat().unwrap(), args[1].as_nat().unwrap());
            TestOutcome::from_bool(lib.check(le, 40, 40, args) == Some(n <= m))
        });
        Runner::new(7).with_size(30).run_with(
            1000,
            chaos.wrap_gen(|size, rng| {
                let n = rand::Rng::gen_range(rng, 0..=size);
                let m = rand::Rng::gen_range(rng, 0..=size);
                Some(vec![Value::nat(n), Value::nat(m)])
            }),
            |args, labels| {
                let (n, m) = (args[0].as_nat().unwrap(), args[1].as_nat().unwrap());
                labels.classify(n <= m, "le");
                labels.classify(n > m, "gt");
                prop(args)
            },
        )
    };
    let (report, again) = {
        let _quiet = silence_panics();
        (run(), run())
    };
    assert!(report.crashed > 0, "1% fault injection over 1000 tests");
    // Snapshot: the whole telemetry block is deterministic (no
    // wall-clock anywhere in Display) and stable across runs.
    assert_eq!(report.to_string(), again.to_string());
    let expected = "\
+++ Passed 988 tests (0 discards) [12 crashed]
  crashed:   12 (first at test 19)
  discards:  0 of 1000 attempts (0.0%)
  stopped:   no (ran to completion)
  spent:     1000 steps, 0 backtracks
  labels:
     46.3% gt (457)
     53.7% le (531)
  input sizes: 0:2 1:4 2-3:8 4-7:27 8-15:94 16-31:406 32-63:459 (n=1000, mean 30.4, max 60)";
    assert_eq!(report.to_string(), expected);
}

#[test]
fn explain_describes_derived_instances() {
    let (lib, le, _, _) = le_lib();
    let text = lib.explain(le);
    assert!(text.contains("relation le"), "{text}");
    assert!(text.contains("checker"), "{text}");
    assert!(text.contains("le_n"), "{text}");
    assert!(text.contains("static step stats"), "{text}");
}

#[test]
fn explain_pairs_static_estimates_with_observed_premise_costs() {
    let (lib, le, u, tys) = le_lib();
    // Unarmed (or trace-only) sessions render no cost table.
    assert!(!lib.explain(le).contains("cost table"), "needs stats probe");
    let stats = SearchStats::new();
    let armed = {
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        for args in tuples_up_to(&u, &tys, 5) {
            let _ = lib.check(le, 8, 8, &args);
        }
        lib.explain(le)
    };
    assert!(
        armed.contains("cost table (estimated vs observed"),
        "{armed}"
    );
    // The recursive premise of le_S was both estimated and observed.
    assert!(armed.contains("rec-check"), "{armed}");
    assert!(armed.contains("evals, mean"), "{armed}");
    // The explicit-stats form renders the same table unarmed.
    let explicit = lib.explain_with_stats(le, &stats);
    assert!(explicit.contains("cost table (estimated vs observed"));
    assert_eq!(
        armed, explicit,
        "armed and explicit-stats tables must agree"
    );
}

#[test]
fn explain_marks_never_attempted_premises() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel le : nat nat :=
          | le_n : forall n, le n n
          | le_S : forall n m, le n m -> le n (S m)
          .
          rel q : nat :=
          | qz : forall n, le n n -> q n
          | qs : forall n, le (S n) n -> q (S (S (S (S n))))
          .",
    )
    .unwrap();
    let q = env.rel_id("q").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(q).unwrap();
    let lib = b.build();
    let stats = SearchStats::new();
    {
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        // Only 0..=2: rule qs's conclusion (>= 4) never matches, so
        // its premise is estimated but never evaluated.
        for n in 0..3u64 {
            let _ = lib.check(q, 8, 8, &[Value::nat(n)]);
        }
    }
    let text = lib.explain_with_stats(q, &stats);
    assert!(
        text.contains("obs n/a (never attempted)"),
        "unattempted premises must say so explicitly, not render zeros:\n{text}"
    );
    assert!(
        text.contains("evals, mean"),
        "attempted premises still render observations:\n{text}"
    );
}

/// Serving fixture for the probe-parity tests: one frozen `even'` core.
fn serve_shared() -> (SharedLibrary, RelId) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel even' : nat :=
          | even_0  : even' 0
          | even_SS : forall n, even' n -> even' (S (S n))
          .",
    )
    .unwrap();
    let even = env.rel_id("even'").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(even).unwrap();
    (b.build().shared(), even)
}

/// One serving run: warm the shared table to its fixpoint
/// single-threaded, optionally retire one shard, then serve the corpus
/// at `threads` workers (optionally with a `SearchStats` probe armed on
/// every session). Returns the per-request verdicts (corpus order), the
/// deterministic metrics JSON, and the probe's request count.
fn serve_run(
    threads: usize,
    armed: bool,
    poison: bool,
) -> (Vec<Result<Option<bool>, ExecError>>, String, u64) {
    let (shared, even) = serve_shared();
    let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
    let corpus: Vec<Vec<Value>> = (0..24u64).map(|n| vec![Value::nat(n)]).collect();
    // Warm to the memo fixpoint: after one pass every top-level entry
    // is cached, so the measured phase's hit/miss counts cannot depend
    // on thread interleaving (the second pass proves the fixpoint).
    let warm = server.session();
    warm.check_batch(even, 30, &corpus);
    warm.check_batch(even, 30, &corpus);
    if poison {
        server.memo().poison_shard(3);
        // Retire it deterministically before the measured phase.
        let mut fp = 0u64;
        while server.memo().shard_for(fp) != 3 {
            fp += 1;
        }
        assert_eq!(server.memo().lookup(even, fp, &[Value::nat(0)], 1, 1), None);
    }
    let stats = SearchStats::new();
    type Slot = std::sync::Mutex<Option<Result<Option<bool>, ExecError>>>;
    let results: Vec<Slot> = corpus.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (server, corpus, results, stats) = (&server, &corpus, &results, &stats);
            scope.spawn(move || {
                let session = server.session();
                let _probe = armed.then(|| session.library().arm_probe(ExecProbe::stats(stats)));
                for (i, args) in corpus.iter().enumerate() {
                    if i % threads == t {
                        let r = session.check_batch(even, 30, std::slice::from_ref(args));
                        *results[i].lock().unwrap() = Some(r.into_iter().next().unwrap());
                    }
                }
            });
        }
    });
    let verdicts = results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("request served"))
        .collect();
    (
        verdicts,
        server.snapshot().deterministic_json(),
        stats.requests(),
    )
}

/// Probe parity through the serving layer: arming a `SearchStats` on
/// every worker changes neither the verdicts nor one byte of the
/// deterministic counters, at 1, 2, and 4 workers — and the counters
/// themselves are identical across thread counts, with and without a
/// poison-retired shard in the mix.
#[test]
fn serving_layer_probe_parity_across_threads_and_poison() {
    let _quiet = silence_panics();
    for poison in [false, true] {
        let (base_verdicts, base_json, _) = serve_run(1, false, poison);
        for (i, v) in base_verdicts.iter().enumerate() {
            assert_eq!(v, &Ok(Some(i % 2 == 0)), "n={i} poison={poison}");
        }
        for threads in [1usize, 2, 4] {
            let (unarmed_v, unarmed_json, _) = serve_run(threads, false, poison);
            let (armed_v, armed_json, requests) = serve_run(threads, true, poison);
            assert_eq!(unarmed_v, armed_v, "threads={threads} poison={poison}");
            assert_eq!(
                unarmed_json, armed_json,
                "arming must not move a deterministic counter \
                 (threads={threads} poison={poison})"
            );
            assert_eq!(unarmed_v, base_verdicts, "threads={threads}");
            assert_eq!(
                unarmed_json, base_json,
                "deterministic counters must be byte-identical across \
                 thread counts (threads={threads} poison={poison})"
            );
            assert_eq!(requests, 24, "every measured request probed");
        }
    }
}
