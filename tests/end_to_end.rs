//! End-to-end integration: surface syntax → derivation → execution →
//! validation, across every workspace crate.

use indrel::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pipeline(src: &str) -> (Universe, RelEnv) {
    let mut u = Universe::new();
    u.std_list();
    u.std_funs();
    let mut env = RelEnv::new();
    parse_program(&mut u, &mut env, src).expect("parses");
    (u, env)
}

#[test]
fn parse_derive_check_enumerate_generate_validate() {
    let (u, env) = pipeline(
        r"
        rel le : nat nat :=
        | le_n : forall n, le n n
        | le_S : forall n m, le n m -> le n (S m)
        .
        rel add3 : nat nat nat :=
        | add_0 : forall m, add3 0 m m
        | add_S : forall n m p, add3 n m p -> add3 (S n) m (S p)
        .
        ",
    );
    let add3 = env.rel_id("add3").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(add3).unwrap();
    // Subtraction for free: solve add3 ?n 2 5.
    let back = Mode::producer(3, &[0]);
    // And full relation enumeration: all (n, m, p) with n + m = p.
    let all = Mode::producer(3, &[0, 1, 2]);
    b.derive_producer(add3, back.clone()).unwrap();
    b.derive_producer(add3, all.clone()).unwrap();
    let lib = b.build();

    // check: 2 + 3 = 5
    assert_eq!(
        lib.check(add3, 10, 10, &[Value::nat(2), Value::nat(3), Value::nat(5)]),
        Some(true)
    );
    assert_eq!(
        lib.check(add3, 10, 10, &[Value::nat(2), Value::nat(3), Value::nat(6)]),
        Some(false)
    );

    // enumerate backwards: n with n + 2 = 5
    let ns = lib
        .enumerate(add3, &back, 10, 10, &[Value::nat(2), Value::nat(5)])
        .values();
    assert_eq!(ns, vec![vec![Value::nat(3)]]);

    // enumerate the whole relation at small size, check soundness
    for triple in lib.enumerate(add3, &all, 4, 4, &[]).values() {
        let (n, m, p) = (
            triple[0].as_nat().unwrap(),
            triple[1].as_nat().unwrap(),
            triple[2].as_nat().unwrap(),
        );
        assert_eq!(n + m, p);
    }

    // generate
    let mut rng = SmallRng::seed_from_u64(0);
    for _ in 0..50 {
        if let Some(out) = lib.generate(
            add3,
            &back,
            10,
            10,
            &[Value::nat(4), Value::nat(9)],
            &mut rng,
        ) {
            assert_eq!(out[0], Value::nat(5));
        }
    }

    // validate
    let v = Validator::new(lib).unwrap();
    assert!(v.validate_checker(add3).is_valid());
    assert!(v.validate_enumerator(add3, &back).is_valid());
    assert!(v.validate_generator(add3, &back).is_valid());
}

#[test]
fn checker_producer_interdependency_stlc_style() {
    // The paper's central point: the TApp case needs a type enumerator
    // inside the checker. Exercise it through the real STLC.
    let stlc = indrel::stlc::Stlc::new();
    // (\f:N->N. f 1) (\x:N. x + 1) : N — App forces enumeration of the
    // argument type N->N inside the derived checker.
    let f = stlc.abs(
        stlc.ty_arrow(stlc.ty_n(), stlc.ty_n()),
        stlc.app(stlc.var(0), stlc.con(1)),
    );
    let g = stlc.abs(stlc.ty_n(), stlc.add(stlc.var(0), stlc.con(1)));
    let e = stlc.app(f, g);
    assert_eq!(stlc.derived_check(&[], &e, &stlc.ty_n(), 40), Some(true));
    assert_eq!(
        stlc.derived_check(&[], &e, &stlc.ty_arrow(stlc.ty_n(), stlc.ty_n()), 40),
        Some(false)
    );
}

#[test]
fn derived_plan_renders_like_figure_1() {
    let (u, env) = pipeline(
        r"rel even' : nat :=
          | even_0 : even' 0
          | even_SS : forall n, even' n -> even' (S (S n))
          .",
    );
    let even = env.rel_id("even'").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(even).unwrap();
    let rendered = b
        .checker_plan(even)
        .unwrap()
        .display(b.universe(), b.env())
        .to_string();
    assert!(rendered.contains("handler even_0 (base)"));
    assert!(rendered.contains("handler even_SS (rec)"));
    assert!(rendered.contains("rec size'"));
}

#[test]
fn reference_semantics_agrees_with_derived_checkers_on_corpus_samples() {
    let (u, env) = indrel::corpus::corpus_env();
    let sys = ProofSystem::new(u.clone(), env.clone()).unwrap();
    let names = ["ev", "le", "in_list", "subseq", "sorted", "nostutter"];
    let mut b = LibraryBuilder::new(u.clone(), env.clone());
    for n in names {
        b.derive_checker(env.rel_id(n).unwrap()).unwrap();
    }
    let lib = b.build();
    for n in names {
        let rel = env.rel_id(n).unwrap();
        let tys = env.relation(rel).arg_types().to_vec();
        for args in indrel::term::enumerate::tuples_up_to(&u, &tys, 4) {
            let reference = sys.holds(rel, &args, 12);
            let checker = lib.check(rel, 12, 12, &args);
            match (reference, checker) {
                (Tv::True, r) => assert_eq!(r, Some(true), "{n} on {args:?}"),
                (Tv::False, r) => assert_eq!(r, Some(false), "{n} on {args:?}"),
                (Tv::Unknown, _) => {}
            }
        }
    }
}

#[test]
fn handwritten_instances_shadow_derived_ones() {
    let (u, env) = pipeline(r"rel always : nat := | a : forall n, always n .");
    let always = env.rel_id("always").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    // Register a deliberately wrong handwritten checker and confirm the
    // library dispatches to it (so Figure 3's baselines really are the
    // handwritten artifacts).
    b.register_checker(always, std::sync::Arc::new(|_, _, _| Some(false)));
    let lib = b.build();
    assert_eq!(lib.check(always, 5, 5, &[Value::nat(0)]), Some(false));
}
