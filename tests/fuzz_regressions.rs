//! Fuzz regression corpus: minimized specs that once exercised weak
//! spots of the derivation pipeline, pinned as tier-1 tests.
//!
//! Each test is one checked-in DSL spec run through the full
//! differential oracle bank (`indrel::fuzz::run_dsl`); the assertion
//! message names the violated oracle, so a future failure reads as
//! "oracle X broke on corpus spec Y" without rerunning the fuzzer. The
//! corpus stays non-empty even while the pipeline survives fuzzing
//! clean: the entries below are the minimized shapes that motivated
//! the oracle bank's defenses (operational budgets, skip-not-guess),
//! plus one representative per generator feature axis.

use indrel::fuzz::oracles::{Oracle, OracleOutcome};
use indrel::fuzz::run_dsl;

/// Asserts no oracle in the bank flags `src`, naming the oracle and
/// its evidence on failure.
fn assert_no_violation(src: &str) {
    let report = run_dsl(src);
    for (oracle, outcome) in &report.outcomes {
        if let OracleOutcome::Violation(msg) = outcome {
            panic!(
                "oracle `{}` violated on corpus spec:\n{src}\n{msg}",
                oracle.name()
            );
        }
    }
}

/// Asserts that the named oracle actually *ran* (was not skipped), so
/// a regression cannot hide behind a derivation rejection.
fn assert_ran(src: &str, oracle: Oracle) {
    let report = run_dsl(src);
    let (_, outcome) = report
        .outcomes
        .iter()
        .find(|(o, _)| *o == oracle)
        .expect("oracle in bank");
    assert_eq!(
        *outcome,
        OracleOutcome::Pass,
        "oracle `{}` did not pass on:\n{src}",
        oracle.name()
    );
}

/// Minimized from fuzz seed 0, case 4 (2026-08): two recursive
/// premises with existential subjects make the derived enumeration
/// grow as `E(f) ≈ E(f-1)²·f`; at fuel 6 this is ~10⁸ outcomes and the
/// original oracle bank hung on it. Kept as the witness that every
/// sweep must be operationally budgeted.
const EXISTENTIAL_BLOWUP: &str = r"rel r0 : nat :=
| r0_c0 : forall (x0 : nat), r0 x0
| r0_c1 : forall (x0 : nat) (x1 : nat) (x2 : nat), r0 (S x1) -> r0 x2 -> r0 x0
.";

#[test]
fn existential_blowup_completes_within_budget() {
    // The bank must terminate on this spec (budgeted skips are fine,
    // violations are not).
    assert_no_violation(EXISTENTIAL_BLOWUP);
    assert_ran(EXISTENTIAL_BLOWUP, Oracle::Roundtrip);
}

/// Non-linear conclusion (`x0` twice) plus a disequality premise: the
/// preprocessor must rewrite the repeated variable into an equality
/// the checker tests, and the pretty-printer must re-emit `<>`.
const NONLINEAR_DISEQ: &str = r"rel r0 : nat nat :=
| c0 : forall (x0 : nat), r0 x0 x0
| c1 : forall (x0 : nat) (x1 : nat), x0 <> x1 -> r0 x0 (S x1)
.";

#[test]
fn nonlinear_conclusion_with_disequality() {
    assert_no_violation(NONLINEAR_DISEQ);
    assert_ran(NONLINEAR_DISEQ, Oracle::CheckerVsReference);
    assert_ran(NONLINEAR_DISEQ, Oracle::EnumeratorVsChecker);
}

/// Negated recursive premise: the checker must flip the premise's
/// three-valued verdict, and negation must round-trip as `~ (…)`.
const NEGATED_PREMISE: &str = r"rel ev : nat :=
| ev0 : ev 0
| evSS : forall (n : nat), ev n -> ev (S (S n))
.
rel odd : nat :=
| odd1 : forall (n : nat), ~ (ev n) -> odd n
.";

#[test]
fn negated_premise_spec() {
    assert_no_violation(NEGATED_PREMISE);
    assert_ran(NEGATED_PREMISE, Oracle::CheckerVsReference);
    assert_ran(NEGATED_PREMISE, Oracle::ExecutorEquivalence);
}

/// Function call in a conclusion: `plus` must be rewritten into an
/// equality premise by preprocessing and still agree with the
/// reference search, which evaluates it directly.
const FUNCALL_CONCLUSION: &str = r"rel double : nat nat :=
| d : forall (n : nat), double n (plus n n)
.";

#[test]
fn function_call_in_conclusion() {
    assert_no_violation(FUNCALL_CONCLUSION);
    assert_ran(FUNCALL_CONCLUSION, Oracle::CheckerVsReference);
    assert_ran(FUNCALL_CONCLUSION, Oracle::ProbeParity);
}

/// User datatype with a recursive constructor: pattern compilation
/// over non-`nat` values, exercised through every oracle.
const USER_ADT: &str = r"data d0 := K0_0 | K0_1 d0 .
rel grows : d0 d0 :=
| g0 : forall (x0 : d0), grows x0 (K0_1 x0)
| g1 : forall (x0 : d0) (x1 : d0), grows x0 x1 -> grows x0 (K0_1 x1)
.";

#[test]
fn user_datatype_spec() {
    assert_no_violation(USER_ADT);
    assert_ran(USER_ADT, Oracle::EnumeratorVsChecker);
    assert_ran(USER_ADT, Oracle::BudgetDeterminism);
}

/// Mutual block: derivation currently rejects it (`InstanceCycle`),
/// which must surface as a recorded skip — never a violation — while
/// the round-trip oracle still applies to the `mutual … end` rendering.
const MUTUAL_BLOCK: &str = r"mutual
rel ev2 : nat :=
| e0 : ev2 0
| eS : forall (n : nat), od2 n -> ev2 (S n)
.
rel od2 : nat :=
| oS : forall (n : nat), ev2 n -> od2 (S n)
.
end";

#[test]
fn mutual_block_roundtrips_and_skips_cleanly() {
    assert_no_violation(MUTUAL_BLOCK);
    assert_ran(MUTUAL_BLOCK, Oracle::Roundtrip);
    let report = run_dsl(MUTUAL_BLOCK);
    assert!(report.features.mutual);
    assert!(
        report
            .outcomes
            .iter()
            .any(|(o, out)| *o == Oracle::CheckerVsReference
                && matches!(out, OracleOutcome::Skip(_))),
        "mutual derivation rejection must be a recorded skip"
    );
}

/// The `le` relation from the paper: the canonical known-good spec.
/// Every oracle must run and pass — if any skips here, the bank lost
/// coverage.
const PAPER_LE: &str = r"rel le : nat nat :=
| le_n : forall (n : nat), le n n
| le_S : forall (n : nat) (m : nat), le n m -> le n (S m)
.";

#[test]
fn paper_le_passes_every_oracle() {
    let report = run_dsl(PAPER_LE);
    for (oracle, outcome) in &report.outcomes {
        assert_eq!(
            *outcome,
            OracleOutcome::Pass,
            "oracle `{}` must run and pass on the paper's `le`",
            oracle.name()
        );
    }
}
