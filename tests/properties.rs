//! Property-based tests (proptest) on the framework's core invariants.

use indrel::prelude::*;
use proptest::prelude::*;
use std::cell::OnceCell;

// ---------------------------------------------------------------------
// Shared fixtures (built once per process; proptest reruns closures).
// ---------------------------------------------------------------------

thread_local! {
    static LE_LIB: OnceCell<(Library, RelId)> = const { OnceCell::new() };
    static SORTED_LIB: OnceCell<(Library, RelId, Universe)> = const { OnceCell::new() };
}

fn with_le<R>(f: impl FnOnce(&Library, RelId) -> R) -> R {
    LE_LIB.with(|cell| {
        let (lib, le) = cell.get_or_init(|| {
            let mut u = Universe::new();
            let mut env = RelEnv::new();
            parse_program(
                &mut u,
                &mut env,
                r"rel le : nat nat :=
                  | le_n : forall n, le n n
                  | le_S : forall n m, le n m -> le n (S m)
                  .",
            )
            .unwrap();
            let le = env.rel_id("le").unwrap();
            let mut b = LibraryBuilder::new(u, env);
            b.derive_checker(le).unwrap();
            b.derive_producer(le, Mode::producer(2, &[0])).unwrap();
            (b.build(), le)
        });
        f(lib, *le)
    })
}

fn with_sorted<R>(f: impl FnOnce(&Library, RelId, &Universe) -> R) -> R {
    SORTED_LIB.with(|cell| {
        let (lib, sorted, u) = cell.get_or_init(|| {
            let (u, env) = indrel::corpus::corpus_env();
            let sorted = env.rel_id("sorted").unwrap();
            let mut b = LibraryBuilder::new(u.clone(), env);
            b.derive_checker(sorted).unwrap();
            (b.build(), sorted, u)
        });
        f(lib, *sorted, u)
    })
}

proptest! {
    // The derived `le` checker agrees with machine comparison — i.e.
    // it is sound and complete on the whole sampled domain.
    #[test]
    fn derived_le_checker_is_correct(n in 0u64..40, m in 0u64..40) {
        with_le(|lib, le| {
            let fuel = n.max(m) + 2;
            let r = lib.check(le, fuel, fuel, &[Value::nat(n), Value::nat(m)]);
            prop_assert_eq!(r, Some(n <= m));
            Ok(())
        })?;
    }

    // Monotonicity (§5.1): a definite verdict never changes with more
    // fuel.
    #[test]
    fn derived_le_checker_is_monotonic(n in 0u64..20, m in 0u64..20, extra in 0u64..20) {
        with_le(|lib, le| {
            let args = [Value::nat(n), Value::nat(m)];
            for fuel in 0..=(n.max(m) + 2) {
                if let Some(b) = lib.check(le, fuel, fuel, &args) {
                    let later = lib.check(le, fuel + extra, fuel + extra, &args);
                    prop_assert_eq!(later, Some(b));
                    break;
                }
            }
            Ok(())
        })?;
    }

    // Producer monotonicity (§5.1): outcome sets grow with size.
    #[test]
    fn derived_le_enumerator_is_size_monotonic(bound in 0u64..12, s1 in 0u64..8, extra in 0u64..4) {
        with_le(|lib, le| {
            let mode = Mode::producer(2, &[0]);
            let at = |s: u64| -> Vec<Vec<Value>> {
                lib.enumerate(le, &mode, s, s, &[Value::nat(bound)]).values()
            };
            let small = at(s1);
            let big = at(s1 + extra);
            for out in &small {
                prop_assert!(big.contains(out), "lost {:?} when growing size", out);
            }
            Ok(())
        })?;
    }

    // The derived `sorted` checker matches a native sortedness check on
    // arbitrary short lists.
    #[test]
    fn derived_sorted_checker_is_correct(xs in proptest::collection::vec(0u64..8, 0..7)) {
        with_sorted(|lib, sorted, u| {
            let l = u.list_value(xs.iter().map(|&x| Value::nat(x)));
            let fuel = xs.len() as u64 + xs.iter().copied().max().unwrap_or(0) + 3;
            let expected = xs.windows(2).all(|w| w[0] <= w[1]);
            let r = lib.check(sorted, fuel, fuel, &[l]);
            prop_assert_eq!(r, Some(expected));
            Ok(())
        })?;
    }

    // Pattern matching inverts evaluation: a linear constructor term,
    // evaluated under an environment, matches back and rebinds exactly
    // the same values.
    #[test]
    fn pattern_matching_inverts_evaluation(a in 0u64..50, b in 0u64..50) {
        let mut u = Universe::new();
        u.std_pair();
        let pair = u.ctor_id("Pair").unwrap();
        let expr = TermExpr::ctor(
            pair,
            vec![TermExpr::var(0), TermExpr::succ(TermExpr::var(1))],
        );
        let mut env = Env::with_slots(2);
        env.bind(VarId::new(0), Value::nat(a));
        env.bind(VarId::new(1), Value::nat(b));
        let v = expr.eval(&env, &u).unwrap();
        let pat = expr.to_pattern().unwrap();
        let mut env2 = Env::with_slots(2);
        prop_assert!(pat.matches(&v, &mut env2));
        prop_assert_eq!(env2.get(VarId::new(0)), Some(&Value::nat(a)));
        prop_assert_eq!(env2.get(VarId::new(1)), Some(&Value::nat(b)));
    }

    // Bounded-exhaustive enumeration of raw values is duplicate-free
    // and size-bounded, and counting agrees with it.
    #[test]
    fn raw_enumeration_invariants(size in 0u64..6) {
        let mut u = Universe::new();
        let list = u.std_list();
        let ty = TypeExpr::App(list, vec![TypeExpr::Nat]);
        let all = indrel::term::enumerate::values_up_to(&u, &ty, size);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(all.len(), dedup.len());
        prop_assert!(all.iter().all(|v| v.size() <= size));
        prop_assert_eq!(
            indrel::term::enumerate::count_up_to(&u, &ty, size),
            all.len() as u64
        );
    }

    // The three-valued conjunction is associative and has Some(true)
    // as unit (checker-combinator laws).
    #[test]
    fn cand_laws(a in proptest::option::of(any::<bool>()),
                 b in proptest::option::of(any::<bool>()),
                 c in proptest::option::of(any::<bool>())) {
        use indrel::producers::cand;
        prop_assert_eq!(cand(Some(true), || a), a);
        prop_assert_eq!(
            cand(cand(a, || b), || c),
            cand(a, || cand(b, || c))
        );
    }

    // backtracking is order-insensitive for definite outcomes: if any
    // option is Some(true), the result is Some(true) regardless of
    // permutation.
    #[test]
    fn backtracking_finds_truth_in_any_order(mut opts in proptest::collection::vec(
        proptest::option::of(any::<bool>()), 1..6), rot in 0usize..6) {
        use indrel::producers::backtracking;
        let expect_true = opts.contains(&Some(true));
        let k = rot % opts.len();
        opts.rotate_left(k);
        let r = backtracking(opts.iter().map(|o| move || *o));
        prop_assert_eq!(r == Some(true), expect_true);
    }
}

// Deterministic companion tests for the RNG-dependent pieces.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Derived generators are sound: every sample satisfies the
    // relation.
    #[test]
    fn derived_le_generator_is_sound(bound in 0u64..15, seed in any::<u64>()) {
        with_le(|lib, le| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mode = Mode::producer(2, &[0]);
            if let Some(out) =
                lib.generate(le, &mode, bound + 2, bound + 2, &[Value::nat(bound)], &mut rng)
            {
                prop_assert!(out[0].as_nat().unwrap() <= bound);
            }
            Ok(())
        })?;
    }
}
