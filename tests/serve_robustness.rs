//! Robustness of the concurrent serving layer (`indrel::core::serve`):
//! batches agree with sequential checks, admission control sheds
//! deterministically instead of queueing, retry schedules replay from
//! their `(seed, index)` token, and chaos-injected shard poisoning —
//! alone and under 2/4/8-thread mixed traffic — degrades the shared
//! memo without ever corrupting a verdict.

use indrel::pbt::chaos::{dump_on_panic, silence_panics, Chaos};
use indrel::prelude::*;
use indrel::producers::Outcome;
use std::time::{Duration, Instant};

/// One frozen core serving two workloads: `even'` (cheap, hit-friendly,
/// with an all-outputs enumerator for mixed traffic) and `twin` (an
/// exponential checker whose proofs have `2^n` leaves, for budget and
/// deadline pressure).
fn serve_core() -> (SharedLibrary, RelId, RelId) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel even' : nat :=
          | even_0  : even' 0
          | even_SS : forall n, even' n -> even' (S (S n))
          .
          rel twin : nat :=
          | t0 : twin 0
          | tS : forall n, twin n -> twin n -> twin (S n)
          .",
    )
    .unwrap();
    let even = env.rel_id("even'").unwrap();
    let twin = env.rel_id("twin").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(even).unwrap();
    b.derive_checker(twin).unwrap();
    b.derive_producer(even, Mode::producer(1, &[0])).unwrap();
    (b.build().shared(), even, twin)
}

/// `check_batch` agrees tuple-for-tuple with sequential `try_check`
/// calls against a plain (serverless, memo-less) fork of the same core.
#[test]
fn batch_verdicts_match_sequential_checks() {
    let (shared, even, twin) = serve_core();
    let server = Server::new(shared.clone(), ServeConfig::default(), Budget::unlimited());
    let session = server.session();
    let plain = shared.fork();
    for (rel, fuel) in [(even, 30u64), (twin, 12u64)] {
        let batch: Vec<Vec<Value>> = (0..10u64).map(|n| vec![Value::nat(n)]).collect();
        let got = session.check_batch(rel, fuel, &batch);
        for (args, r) in batch.iter().zip(&got) {
            assert_eq!(
                r,
                &plain.try_check(rel, fuel, fuel, args, Budget::unlimited()),
                "{args:?} at fuel {fuel}"
            );
        }
    }
    assert!(server.stats().insertions > 0, "the batches fed the table");
}

/// Shedding is deterministic, not timing-dependent: occupy the whole
/// admission capacity with held permits and every request is refused
/// with the structured [`ExecError::Overloaded`]; release the permits
/// and the same batch succeeds. Overload never queues and never stalls.
#[test]
fn held_permits_shed_every_request_and_release_recovers() {
    let (shared, even, _) = serve_core();
    let server = Server::new(
        shared,
        ServeConfig {
            max_inflight: 3,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let session = server.session();
    let batch: Vec<Vec<Value>> = (0..5u64).map(|n| vec![Value::nat(n)]).collect();
    let permits: Vec<Permit> = (0..3).map(|_| server.try_admit().unwrap()).collect();
    let start = Instant::now();
    let shed = session.check_batch(even, 20, &batch);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "shedding must be immediate, not queued"
    );
    for r in &shed {
        assert_eq!(
            r,
            &Err(ExecError::Overloaded {
                inflight: 3,
                capacity: 3
            })
        );
    }
    assert_eq!(server.stats().shed, 5);
    drop(permits);
    let ok = session.check_batch(even, 20, &batch);
    for (n, r) in ok.iter().enumerate() {
        assert_eq!(r, &Ok(Some(n % 2 == 0)), "n={n}");
    }
    assert_eq!(server.stats().shed, 5, "recovery sheds nothing further");
}

/// The `(seed, index)` repro token: a request that had to retry inside
/// a batch replays attempt-for-attempt through [`Session::check_replay`],
/// and the probe layer surfaces the retry count.
#[test]
fn retry_schedule_replays_from_seed_and_index_token() {
    let (shared, _, twin) = serve_core();
    let server = Server::new(
        shared,
        ServeConfig {
            steps_per_request: 8,
            max_retries: 8,
            retry_seed: 0xA11CE,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let session = server.session();
    let batch: Vec<Vec<Value>> = (3..6u64).map(|n| vec![Value::nat(n)]).collect();
    let stats = SearchStats::new();
    let got = {
        let _probe = session.library().arm_probe(ExecProbe::stats(&stats));
        session.check_batch(twin, 10, &batch)
    };
    for (n, r) in (3..6u64).zip(&got) {
        assert_eq!(r, &Ok(Some(true)), "twin {n}");
    }
    assert!(
        stats.retries() > 0,
        "8 steps cannot check twin without retrying"
    );
    assert_eq!(server.stats().retries, stats.retries());
    // Each request replays exactly from (retry_seed, its batch index).
    for (index, (args, want)) in batch.iter().zip(&got).enumerate() {
        let replay = session.check_replay(twin, 10, args, 0xA11CE, index as u64);
        assert_eq!(&replay, want, "index {index}");
    }
}

/// The 1%-shard-poison chaos run: a long sequential request stream
/// with `Chaos::rolls_shard_poison`-driven injection retires shards
/// mid-flight; every verdict stays correct against the even/odd oracle
/// and the surviving shards keep serving hits.
#[test]
fn one_percent_shard_poison_never_corrupts_verdicts() {
    let _quiet = silence_panics();
    let (shared, even, _) = serve_core();
    let server = Server::new(
        shared,
        ServeConfig {
            shards: 8,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let chaos = Chaos::new(0x505).with_shard_poison_rate(0.01);
    let session = server.session();
    let mut injected = 0u64;
    for round in 0..200u64 {
        for shard in 0..8u64 {
            if chaos.rolls_shard_poison(round * 8 + shard) {
                server.memo().poison_shard(shard as usize);
                injected += 1;
            }
        }
        let batch: Vec<Vec<Value>> = (0..12u64)
            .map(|n| vec![Value::nat((n + round) % 24)])
            .collect();
        for (args, r) in batch.iter().zip(session.check_batch(even, 30, &batch)) {
            let n = args[0].as_nat().unwrap();
            assert_eq!(r, Ok(Some(n % 2 == 0)), "round {round}, n {n}");
        }
    }
    let stats = server.stats();
    assert!(injected > 0, "the chaos seed must actually inject");
    assert!(
        stats.degraded_shards > 0,
        "injected poison must retire at least one shard: {stats}"
    );
    assert!(
        stats.degraded_shards < 8,
        "a 1% rate over 200 rounds must not retire the whole table: {stats}"
    );
    assert!(
        stats.hits > 0,
        "surviving shards keep serving hits: {stats}"
    );
}

/// Counter coherence and the automatic flight dump under shard
/// poisoning: the metrics snapshot's `memo.*`/`serve.*` series must
/// equal the [`MemoStats`] totals (one source of truth, two renderings),
/// and a poison-retired shard must leave behind an automatic
/// flight-recorder dump carrying the recent request spans.
#[test]
fn poison_coheres_counters_and_auto_dumps_the_flight_recorder() {
    let _quiet = silence_panics();
    let (shared, even, _) = serve_core();
    let server = Server::new(shared, ServeConfig::default(), Budget::unlimited());
    let session = server.session();
    let batch: Vec<Vec<Value>> = (0..16u64).map(|n| vec![Value::nat(n)]).collect();
    session.check_batch(even, 30, &batch);
    // Retire one shard deterministically (poison, then touch it).
    server.memo().poison_shard(2);
    let mut fp = 0u64;
    while server.memo().shard_for(fp) != 2 {
        fp += 1;
    }
    assert_eq!(server.memo().lookup(even, fp, &[Value::nat(0)], 1, 1), None);
    session.check_batch(even, 30, &batch);
    // Coherence: every shared counter appears identically in both the
    // MemoStats rendering and the metrics snapshot.
    let stats = server.stats();
    let snap = server.snapshot();
    assert_eq!(snap.counter("memo.hits"), Some(stats.hits));
    assert_eq!(snap.counter("memo.misses"), Some(stats.misses));
    assert_eq!(snap.counter("memo.insertions"), Some(stats.insertions));
    assert_eq!(snap.counter("serve.shed"), Some(stats.shed));
    assert_eq!(snap.counter("serve.retries"), Some(stats.retries));
    assert_eq!(snap.gauge("memo.entries"), Some(stats.entries as u64));
    assert_eq!(snap.gauge("memo.degraded_shards"), Some(1));
    assert_eq!(snap.counter("serve.requests"), Some(32));
    // The retirement auto-dumped the flight recorder, spans included.
    let dumps = server.take_auto_dumps();
    assert_eq!(dumps.len(), 1, "one retirement, one dump");
    assert!(dumps[0].contains("\"reason\":\"shard_degraded:[2]\""));
    assert!(dumps[0].contains("\"rel\":\"even'\""), "{}", dumps[0]);
    assert!(dumps[0].lines().count() > 1, "spans ride along");
}

/// One chaos round of mixed traffic at a given thread count. Returns
/// the server's final stats for cross-thread-count assertions.
///
/// Per thread and round: maybe poison a shard (keyed chaos roll, so the
/// schedule is deterministic and independent of interleaving), then
/// either a checker batch (even threads) or an enumerator sweep (odd
/// threads); deadline-storm rolls add an exponential `twin` query whose
/// only acceptable outcomes are the true verdict or a structured
/// cut-off. Thread 0 additionally forces one deterministic shed by
/// exhausting the admission capacity against itself.
fn chaos_round(threads: usize) -> MemoStats {
    let (shared, even, twin) = serve_core();
    let server = Server::new(
        shared,
        ServeConfig {
            shards: 4,
            shard_capacity: 1 << 10,
            max_inflight: 3,
            steps_per_request: 20_000,
            deadline: Some(Duration::from_millis(200)),
            max_retries: 1,
            retry_seed: 7,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let chaos = Chaos::new(0xC4A05)
        .with_shard_poison_rate(0.1)
        .with_deadline_storm_rate(0.2);
    // A failing chaos round dumps every worker's recent request spans
    // (repro tokens included) before the panic propagates.
    dump_on_panic(
        || server.dump_flight_recorder(),
        || {
            run_chaos_traffic(&server, &chaos, threads, even, twin);
        },
    );
    // Retirement is lazy (a poisoned shard is only retired on its next
    // access), and a poison rolled on a worker's final round can land
    // after every other worker has drained — leaving the shard
    // untouched and the degradation invisible. Sweep one probe through
    // every shard so late poisons still register before the
    // degradation assertions read the stats.
    for shard in 0..4usize {
        let mut fp = 0u64;
        while server.memo().shard_for(fp) != shard {
            fp += 1;
        }
        server.memo().lookup(even, fp, &[Value::nat(0)], 1, 1);
    }
    // Deterministic overload, after the workers drain (competing for
    // permits mid-run would race): hold the whole capacity, then
    // request — the request must shed, not stall.
    let session = server.session();
    let permits: Vec<Permit> = (0..3).map(|_| server.try_admit().unwrap()).collect();
    let r = session.check_batch(even, 20, &[vec![Value::nat(4)]]);
    assert!(
        matches!(r[0], Err(ExecError::Overloaded { .. })),
        "{:?}",
        r[0]
    );
    drop(permits);
    server.stats()
}

/// The worker threads of one [`chaos_round`], factored out so the
/// round can wrap them in [`dump_on_panic`].
fn run_chaos_traffic(server: &Server, chaos: &Chaos, threads: usize, even: RelId, twin: RelId) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            let chaos = &chaos;
            scope.spawn(move || {
                let session = server.session();
                for round in 0..12u64 {
                    let key = ((t as u64) << 32) | round;
                    if chaos.rolls_shard_poison(key) {
                        server.memo().poison_shard((key % 4) as usize);
                    }
                    if t % 2 == 0 {
                        let batch: Vec<Vec<Value>> = (0..16u64)
                            .map(|n| vec![Value::nat((n + round) % 24)])
                            .collect();
                        let got = session.check_batch(even, 30, &batch);
                        for (args, r) in batch.iter().zip(&got) {
                            let n = args[0].as_nat().unwrap();
                            match r {
                                Ok(v) => assert_eq!(*v, Some(n % 2 == 0), "n={n}"),
                                // Shed under contention is acceptable;
                                // a wrong verdict never is.
                                Err(ExecError::Overloaded { .. }) => {}
                                Err(e) => panic!("unexpected error for n={n}: {e}"),
                            }
                        }
                    } else {
                        let mode = Mode::producer(1, &[0]);
                        let budget = Budget::unlimited().with_steps(5_000);
                        let mut stream = session
                            .library()
                            .try_enumerate(even, &mode, 12, 12, &[], budget)
                            .unwrap();
                        for o in &mut stream {
                            if let Outcome::Val(outs) = o {
                                assert_eq!(
                                    outs[0].as_nat().unwrap() % 2,
                                    0,
                                    "enumerator must only produce evens"
                                );
                            }
                        }
                    }
                    if chaos.rolls_deadline_storm(key) {
                        let r = session.check_batch(twin, 26, &[vec![Value::nat(22)]]);
                        match &r[0] {
                            Ok(v) => assert_eq!(*v, Some(true), "twin 22 holds at fuel 26"),
                            Err(
                                ExecError::Overloaded { .. }
                                | ExecError::BudgetExhausted { .. }
                                | ExecError::Deadline,
                            ) => {}
                            Err(e) => panic!("storm query failed structurally wrong: {e}"),
                        }
                    }
                }
            });
        }
    });
}

/// The chaos-under-concurrency acceptance run: 2, 4, and 8 worker
/// threads of mixed check/enumerate/storm traffic with shard poisoning.
/// Every round completes (no deadlock — bounded wall clock), no thread
/// ever observes a wrong verdict (asserted inside the workers), shard
/// degradation is observed but bounded, and overload sheds.
#[test]
fn chaos_under_concurrency_degrades_without_lying() {
    let _quiet = silence_panics();
    for threads in [2usize, 4, 8] {
        let start = Instant::now();
        let stats = chaos_round(threads);
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "{threads} threads must not stall: took {:?}",
            start.elapsed()
        );
        assert!(
            stats.degraded_shards > 0,
            "{threads} threads: poison injection must retire a shard: {stats}"
        );
        assert!(
            stats.degraded_shards <= 4,
            "{threads} threads: degradation is bounded by the shard count: {stats}"
        );
        assert!(
            stats.shed >= 1,
            "{threads} threads: the forced overload must shed: {stats}"
        );
        assert!(
            stats.entries <= 4 * (1 << 10),
            "{threads} threads: capacity caps hold under concurrency: {stats}"
        );
    }
}
