//! Profile-guided replanning ([`Library::replan_from`]): schedule
//! equivalence between the static and replanned cores over the
//! Figure 3 corpora, byte-determinism of sibling replans, hot
//! replanning inside a serving [`Session`], composition with
//! memoisation and the VM backend, and an adversarial spec where the
//! planner provably reorders — all pinned end to end.

use indrel::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A two-premise relation whose source order is pessimal: `le' 0 n` is
/// expensive (O(n)) and never fails, `le' (S n) m` is cheap and almost
/// always fails on the profiling tuples. Both premises are plain
/// checker calls, so their static costs tie and the unprofiled
/// scheduler keeps source order.
const ADVERSARIAL_SPEC: &str = r"
    rel le' : nat nat :=
    | le_n : forall n, le' n n
    | le_S : forall n m, le' n m -> le' n (S m)
    .
    rel good : nat nat :=
    | g : forall n m, le' 0 n -> le' (S n) m -> good n m
    .
";

const FUEL: u64 = 96;

fn adversarial_lib() -> (Library, RelId) {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(&mut u, &mut env, ADVERSARIAL_SPEC).unwrap();
    let rel = env.rel_id("good").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(rel).unwrap();
    (b.build(), rel)
}

/// All-failing tuples with n large and m small — the worst case for
/// the source order, so the profile flags the divergence.
fn adversarial_tuples() -> Vec<Vec<Value>> {
    (0..24)
        .map(|i| vec![Value::nat(20 + (i % 6) * 4), Value::nat(i % 3)])
        .collect()
}

/// One profiling pass under an armed stats probe.
fn profile(lib: &Library, rel: RelId, tuples: &[Vec<Value>]) -> SearchStats {
    let stats = SearchStats::new();
    let _probe = lib.arm_probe(ExecProbe::stats(&stats));
    for t in tuples {
        let _ = lib.check(rel, FUEL, FUEL, t);
    }
    stats
}

/// The planner reorders the adversarial spec, reports it, emits the
/// `Replanned` probe event, and the replanned `explain()` renders the
/// hoisted premise first with the profile column attached.
#[test]
fn adversarial_replan_reorders_and_explains() {
    let (lib, good) = adversarial_lib();
    let stats = profile(&lib, good, &adversarial_tuples());

    // The replan itself is observable: a probe armed on the *source*
    // session sees one `Replanned` event, exported under `"plan"`.
    let replan_stats = SearchStats::new();
    let (replanned, report) = {
        let _probe = lib.arm_probe(ExecProbe::stats(&replan_stats));
        lib.replan_from_report(&stats)
    };
    assert!(report.plan_changed(good), "{report:?}");
    assert_eq!(report.replanned, vec![good], "{report:?}");
    assert!(report.errors.is_empty(), "{report:?}");
    assert_eq!(replan_stats.replans(), 1);
    assert!(
        replan_stats.to_json().contains("\"plan\":{\"replans\":1}"),
        "{}",
        replan_stats.to_json()
    );

    // The replanned core advertises its provenance and renders the
    // replan cost column; the cheap selective premise (source index 1)
    // now runs before the expensive one (source index 0).
    let after = profile(&replanned, good, &adversarial_tuples());
    let explain = replanned.explain_with_stats(good, &after);
    assert!(explain.contains("profile-guided"), "{explain}");
    assert!(explain.contains(" | replan "), "{explain}");
    let p1 = explain.find("[p1 ]").expect("premise 1 row");
    let p0 = explain.find("[p0 ]").expect("premise 0 row");
    assert!(p1 < p0, "premise 1 must be scheduled first:\n{explain}");

    // Schedule equivalence: at fuel that decides everything on this
    // grid, both schedules agree verdict-for-verdict.
    for n in 0..6u64 {
        for m in 0..6u64 {
            let args = [Value::nat(n), Value::nat(m)];
            assert_eq!(
                lib.check(good, FUEL, FUEL, &args),
                replanned.check(good, FUEL, FUEL, &args),
                "good {n} {m}"
            );
        }
    }
}

/// Sibling replans from one snapshot are byte-deterministic: identical
/// reports and byte-identical `explain()` for every relation.
#[test]
fn replans_are_byte_deterministic() {
    let (lib, good) = adversarial_lib();
    let stats = profile(&lib, good, &adversarial_tuples());
    let (a, ra) = lib.replan_from_report(&stats);
    let (b, rb) = lib.replan_from_report(&stats);
    assert_eq!(ra.replanned, rb.replanned);
    assert_eq!(ra.unchanged, rb.unchanged);
    assert_eq!(ra.kept, rb.kept);
    for (rel, _) in a.env().iter() {
        assert_eq!(
            a.explain(rel),
            b.explain(rel),
            "sibling replans must render identically"
        );
    }
}

/// A replan whose report says no plan changed is behaviourally
/// invisible: verdicts *and* probe streams match exactly.
#[test]
fn noop_replan_is_behaviourally_invisible() {
    let mut u = Universe::new();
    let mut env = RelEnv::new();
    parse_program(
        &mut u,
        &mut env,
        r"rel le : nat nat :=
          | le_n : forall n, le n n
          | le_S : forall n m, le n m -> le n (S m)
          .",
    )
    .unwrap();
    let le = env.rel_id("le").unwrap();
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(le).unwrap();
    let lib = b.build();

    let tuples: Vec<Vec<Value>> = (0..8u64)
        .flat_map(|n| (0..8u64).map(move |m| vec![Value::nat(n), Value::nat(m)]))
        .collect();
    let stats = profile(&lib, le, &tuples);
    let (replanned, report) = lib.replan_from_report(&stats);
    assert!(
        report.is_noop(),
        "single-premise rules cannot reorder: {report:?}"
    );

    let before = profile(&lib, le, &tuples);
    let after = profile(&replanned, le, &tuples);
    assert_eq!(
        before.to_json(),
        after.to_json(),
        "a no-op replan must not perturb the probe stream"
    );
    for t in &tuples {
        assert_eq!(
            lib.check(le, 20, 20, t),
            replanned.check(le, 20, 20, t),
            "{t:?}"
        );
    }
}

/// Replanning the Figure 3 corpora (BST, IFC, STLC) from profiles of
/// themselves: decided verdicts agree tuple-for-tuple, and where the
/// report says nothing changed the agreement is exact.
#[test]
fn fig3_corpora_schedule_equivalence() {
    // BST: member/insert workloads over generated trees.
    let bst = indrel::bst::Bst::new();
    let mut rng = SmallRng::seed_from_u64(11);
    let tuples: Vec<Vec<Value>> = (0..24)
        .map(|_| {
            vec![
                Value::nat(0),
                Value::nat(16),
                bst.handwritten_gen(0, 16, 5, &mut rng),
            ]
        })
        .collect();
    assert_equiv_after_replan(bst.library(), bst.relation(), 64, &tuples);

    // IFC: indistinguishability over generated machine pairs.
    let ifc = indrel::ifc::Ifc::new();
    let mut rng = SmallRng::seed_from_u64(12);
    let tuples: Vec<Vec<Value>> = (0..16)
        .map(|_| {
            let (_, m1, m2) = ifc.gen_indist_pair(5, &mut rng);
            vec![ifc.machine_value(&m1), ifc.machine_value(&m2)]
        })
        .collect();
    assert_equiv_after_replan(ifc.library(), ifc.indist_relation(), 64, &tuples);

    // STLC: typing over generated well-typed terms.
    let stlc = indrel::stlc::Stlc::new();
    let mut rng = SmallRng::seed_from_u64(13);
    let ctx = stlc.ctx(&[]);
    let mut tuples = Vec::new();
    while tuples.len() < 16 {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 4, &mut rng) {
            tuples.push(vec![ctx.clone(), e, ty]);
        }
    }
    assert_equiv_after_replan(stlc.library(), stlc.typing_relation(), 40, &tuples);
}

fn assert_equiv_after_replan(lib: &Library, rel: RelId, fuel: u64, tuples: &[Vec<Value>]) {
    let stats = SearchStats::new();
    {
        let _probe = lib.arm_probe(ExecProbe::stats(&stats));
        for t in tuples {
            let _ = lib.check(rel, fuel, fuel, t);
        }
    }
    let (replanned, report) = lib.replan_from_report(&stats);
    assert!(report.errors.is_empty(), "{report:?}");
    for t in tuples {
        let old = lib.check(rel, fuel, fuel, t);
        let new = replanned.check(rel, fuel, fuel, t);
        if report.is_noop() {
            assert_eq!(old, new, "no-op replan must agree exactly: {t:?}");
        } else if let (Some(a), Some(b)) = (old, new) {
            assert_eq!(a, b, "decided verdicts must agree across schedules: {t:?}");
        }
    }
}

/// Replanned cores compose with tabling and the VM backend exactly
/// like freshly built ones.
#[test]
fn replan_composes_with_memo_and_vm() {
    let (lib, good) = adversarial_lib();
    let stats = profile(&lib, good, &adversarial_tuples());
    let replanned = lib.replan_from(&stats);
    let memoed = replanned.clone().with_memo();
    let vm = replanned.clone().with_vm();
    for n in 0..5u64 {
        for m in 0..5u64 {
            let args = [Value::nat(n), Value::nat(m)];
            let plain = replanned.check(good, FUEL, FUEL, &args);
            assert_eq!(plain, memoed.check(good, FUEL, FUEL, &args), "memo {n} {m}");
            assert_eq!(plain, vm.check(good, FUEL, FUEL, &args), "vm {n} {m}");
        }
    }
}

/// `Session::replan_hot` swaps the schedule under a live serving
/// session: the report names the reordered relation, verdicts stay
/// consistent, the shared memo and VM attachments survive, and the
/// `plan.*` telemetry series record the pass.
#[test]
fn session_replan_hot_keeps_serving() {
    let (lib, good) = adversarial_lib();
    let shared = lib.shared();
    let server = Server::new(
        shared,
        ServeConfig {
            use_vm: true,
            ..ServeConfig::default()
        },
        Budget::unlimited(),
    );
    let mut session = server.session();

    // Profile while the shared memo is still cold — once it is warm,
    // checks answer from the table and premises stop accumulating
    // observations.
    let tuples = adversarial_tuples();
    let stats = SearchStats::new();
    {
        let _probe = session.library().arm_probe(ExecProbe::stats(&stats));
        for t in &tuples {
            let _ = session.library().check(good, FUEL, FUEL, t);
        }
    }
    let before: Vec<_> = session.check_batch(good, FUEL, &tuples);
    let report = session.replan_hot(&stats);
    assert!(report.plan_changed(good), "{report:?}");

    // Same decided verdicts after the hot swap, served from the same
    // shared memo (fuel-monotone facts stay valid across schedules).
    let hits_before = server.stats().hits;
    let after: Vec<_> = session.check_batch(good, FUEL, &tuples);
    assert_eq!(before, after, "hot replan must not change verdicts");
    assert!(
        server.stats().hits > hits_before,
        "the shared memo must survive the hot swap"
    );

    let snap = server.snapshot();
    assert_eq!(snap.counter("plan.replans"), Some(1));
    assert_eq!(snap.counter("plan.relations_replanned"), Some(1));
}
