//! Parser coverage: the rendered form of every corpus rule re-parses
//! to the same rule (display/parse round trip), the complete
//! pretty-printer round-trips both the corpus and a fuzzed stream of
//! generated specs structurally, plus error-path coverage.

use indrel::fuzz::gen_spec;
use indrel::prelude::*;
use indrel::rel::parse::{parse_program, std_universe};
use indrel::rel::pretty::pretty_program;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every corpus rule survives a display → parse round trip.
#[test]
fn corpus_rules_round_trip_through_display() {
    let (u, env) = indrel::corpus::corpus_env();
    for (rel_id, relation) in env.iter() {
        for rule in relation.rules() {
            let rendered = env.display_rule(&u, rel_id, rule).to_string();
            // Build a single-relation program around the rendered rule.
            // The relation must be re-declared under a fresh name so
            // the conclusion head matches; rewrite the head tokens.
            let fresh = format!("{}_rt", relation.name());
            let arg_tys: Vec<String> = relation
                .arg_types()
                .iter()
                .map(|t| {
                    let shown = t.display(&u).to_string();
                    if shown.contains(' ') {
                        format!("({shown})")
                    } else {
                        shown
                    }
                })
                .collect();
            let body = rendered.replace(&format!(" {} ", relation.name()), &format!(" {fresh} "));
            // Only rules whose premises all refer to already-declared
            // relations (or itself) can re-parse standalone; rules
            // referring to *other* relations parse fine because the
            // corpus env already declared them — but we must parse into
            // a fresh env that has them. Clone the env.
            let mut u2 = u.clone();
            let mut env2 = env.clone();
            let program = format!("rel {fresh} : {} :=\n| {body}\n.", arg_tys.join(" "));
            let parsed = parse_program(&mut u2, &mut env2, &program);
            let parsed = match parsed {
                Ok(p) => p,
                Err(e) => panic!(
                    "rule `{}` of `{}` failed to re-parse:\n{program}\n{e}",
                    rule.name(),
                    relation.name()
                ),
            };
            assert_eq!(parsed.relations, vec![fresh.clone()]);
            let new_rel = env2.rel_id(&fresh).unwrap();
            let new_rule = &env2.relation(new_rel).rules()[0];
            assert_eq!(new_rule.name(), rule.name());
            assert_eq!(new_rule.num_vars(), rule.num_vars());
            assert_eq!(new_rule.premises().len(), rule.premises().len());
            assert_eq!(new_rule.conclusion().len(), rule.conclusion().len());
        }
    }
}

/// `parse(pretty(spec)) == spec` structurally, for a stream of fuzzed
/// specs covering negation, existentials, function calls, non-linear
/// conclusions, datatypes, and mutual blocks. This is the parser
/// round-trip oracle of the fuzz pipeline, pinned into tier-1 at a
/// fixed seed.
#[test]
fn generated_specs_round_trip_through_pretty_printer() {
    let mut mutual_seen = 0;
    for case in 0..300u64 {
        let spec = gen_spec(&mut SmallRng::seed_from_u64_stream(0xF22, case), 6);
        mutual_seen += u64::from(spec.has_mutual());
        let text = spec.emit();

        let mut u = std_universe();
        let mut env = RelEnv::new();
        let parsed = parse_program(&mut u, &mut env, &text)
            .unwrap_or_else(|e| panic!("generated spec failed to parse: {e}\n{text}"));

        let dts: Vec<DtId> = parsed
            .datatypes
            .iter()
            .map(|n| u.dt_id(n).expect("declared"))
            .collect();
        let rels: Vec<RelId> = parsed
            .relations
            .iter()
            .map(|n| env.rel_id(n).expect("declared"))
            .collect();
        let pretty = pretty_program(&u, &env, &dts, &rels);

        let mut u2 = std_universe();
        let mut env2 = RelEnv::new();
        parse_program(&mut u2, &mut env2, &pretty)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{pretty}"));
        for name in &parsed.relations {
            assert_eq!(
                env.relation(env.rel_id(name).unwrap()),
                env2.relation(env2.rel_id(name).expect("relation survives")),
                "relation `{name}` changed across pretty/parse round trip:\n{pretty}"
            );
        }
    }
    assert!(mutual_seen > 0, "stream must exercise mutual blocks");
}

#[test]
fn parse_errors_are_informative() {
    let cases: &[(&str, &str)] = &[
        ("data", "expected datatype name"),
        ("data d := C unknown_ty .", "unknown type"),
        ("rel r : nat := | a : r x y .", "expects"),
        (
            "rel r : nat := | a : S = 1 -> r 0 .",
            "exactly one argument",
        ),
        (
            "rel r : nat := | a : plus 1 = 1 -> r 0 .",
            "expects 2 arguments",
        ),
        ("rel r : nat := | a ", "expected"),
        ("data d := C . data d := D .", "duplicate datatype"),
        ("rel r : nat := . rel r : nat := .", "duplicate relation"),
        ("@", "unexpected character"),
        ("rel r : nat := | a : ~ (r 0) .", "cannot be negated"),
    ];
    for (src, needle) in cases {
        let mut u = Universe::new();
        u.std_funs();
        let mut env = RelEnv::new();
        let err = parse_program(&mut u, &mut env, src).expect_err(&format!("`{src}` should fail"));
        assert!(
            err.to_string().contains(needle),
            "`{src}` produced `{err}` (wanted `{needle}`)"
        );
    }
}

#[test]
fn type_errors_surface_through_the_parser() {
    let mut u = Universe::new();
    u.std_list();
    let mut env = RelEnv::new();
    // x used at both nat and bool.
    let err = parse_program(
        &mut u,
        &mut env,
        "rel r : nat bool := | a : forall x, r x x .",
    )
    .unwrap_err();
    assert!(err.to_string().contains("used at both"), "{err}");
}

#[test]
fn annotations_override_inference_gaps() {
    let mut u = Universe::new();
    u.std_list();
    u.std_funs();
    let mut env = RelEnv::new();
    // `l` occurs only under `len`, whose element type is unconstrained;
    // the explicit annotation resolves it.
    parse_program(
        &mut u,
        &mut env,
        r"rel lenrel : nat :=
          | l : forall (xs : list nat) n, len xs = n -> lenrel n
          .",
    )
    .unwrap();
    let r = env.rel_id("lenrel").unwrap();
    let rule = &env.relation(r).rules()[0];
    assert!(rule.var_types().iter().all(Option::is_some));
    // And the annotated relation now derives (the unconstrained
    // instantiation has a type to enumerate).
    let mut b = LibraryBuilder::new(u, env);
    b.derive_checker(r).unwrap();
    let lib = b.build();
    assert_eq!(lib.check(r, 6, 6, &[Value::nat(2)]), Some(true));
    assert_eq!(lib.check(r, 6, 6, &[Value::nat(9)]), None); // needs longer lists than the fuel allows
}
