//! Parity of the compiled bytecode VM against the closure tree.
//!
//! A [`Library::with_vm`] session runs every relation whose plan
//! compiled to bytecode through the register VM instead of the lowered
//! closure tree. The two backends promise *observational identity*:
//! byte-identical verdicts, byte-identical [`SearchStats`] aggregation
//! (same probe events in the same order), and byte-identical budget
//! behaviour (`BudgetExhausted` at the same charge site, as `Result`
//! equality under a step-budget ladder). These tests pin that contract
//! on the three paper case studies — BST, STLC typing, and IFC
//! indistinguishability — including a memoized shared-serving run where
//! the two backends must populate and reuse the same table entries.

use indrel::bst::Bst;
use indrel::ifc::Ifc;
use indrel::prelude::*;
use indrel::stlc::Stlc;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// Budget ladder for `Result`-level parity: tight enough that early
/// rungs exhaust mid-search, generous enough that the top rung decides.
const STEP_LADDER: [u64; 6] = [1, 8, 64, 512, 4096, 1 << 20];

/// Runs `sweep` once per backend — plain closure-tree library vs
/// `with_vm` fork — with a [`SearchStats`] probe armed on each, and
/// asserts byte-identical aggregation.
fn assert_stats_parity(lib: &Library, sweep: impl Fn(&Library)) {
    let vm = lib.fork().with_vm();
    let closure_stats = SearchStats::new();
    {
        let _p = lib.arm_probe(ExecProbe::stats(&closure_stats));
        sweep(lib);
    }
    let vm_stats = SearchStats::new();
    {
        let _p = vm.arm_probe(ExecProbe::stats(&vm_stats));
        sweep(&vm);
    }
    assert_eq!(
        closure_stats.to_json(),
        vm_stats.to_json(),
        "probe event aggregation must be byte-identical across backends"
    );
}

/// An arbitrary tree over small keys — not bounds-respecting, so the
/// corpus mixes both verdicts and plenty of backtracking.
fn arbitrary_tree(bst: &Bst, depth: u64, rng: &mut SmallRng) -> Value {
    if depth == 0 || rng.gen_range(0..4u32) == 0 {
        return bst.leaf();
    }
    bst.tree_node(
        rng.gen_range(0..16u64),
        arbitrary_tree(bst, depth - 1, rng),
        arbitrary_tree(bst, depth - 1, rng),
    )
}

fn bst_corpus(bst: &Bst, n: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                Value::nat(0),
                Value::nat(16),
                arbitrary_tree(bst, 4, &mut rng),
            ]
        })
        .collect()
}

#[test]
fn bst_compiles_and_explain_reports_bytecode() {
    let bst = Bst::new();
    let lib = bst.library();
    // The headline fig3 relations must actually take the compiled
    // path — a silent fallback would make every parity test vacuous.
    assert!(lib.vm_compiled(bst.relation()), "bst plan should compile");
    // The ordering relations are *registered* handwritten checkers
    // (primitive instances, no plan), so there is nothing to compile —
    // `vm_compiled` is the honest "does this relation take the VM
    // path" answer, not a failure report.
    assert!(
        !lib.vm_compiled(bst.lt_relation()),
        "primitive instances have no bytecode"
    );
    let explain = lib.explain(bst.relation());
    assert!(
        explain.contains("bytecode:"),
        "explain() should surface the compiled program:\n{explain}"
    );
}

#[test]
fn bst_vm_matches_closure_verdicts_stats_and_cutoffs() {
    let bst = Bst::new();
    let lib = bst.library();
    let vm = lib.fork().with_vm();
    let rel = bst.relation();
    let corpus = bst_corpus(&bst, 80, 11);
    let fuels = [0u64, 2, 5, 9, 64];
    let mut verdicts = [0usize; 3];
    for args in &corpus {
        for fuel in fuels {
            let want = lib.check(rel, fuel, fuel, args);
            let got = vm.check(rel, fuel, fuel, args);
            assert_eq!(got, want, "fuel {fuel} on {args:?}");
            verdicts[match want {
                Some(true) => 0,
                Some(false) => 1,
                None => 2,
            }] += 1;
            // Budget parity as a `Result`: the VM charges the same
            // sites in the same order, so each rung of the ladder
            // exhausts (or decides) identically.
            for steps in STEP_LADDER {
                let budget = || Budget::unlimited().with_steps(steps);
                assert_eq!(
                    vm.try_check(rel, fuel, fuel, args, budget()),
                    lib.try_check(rel, fuel, fuel, args, budget()),
                    "steps {steps} fuel {fuel} on {args:?}"
                );
            }
        }
    }
    // The corpus must exercise all three verdicts or the sweep proves
    // little.
    assert!(
        verdicts.iter().all(|&n| n > 0),
        "corpus should hit Some(true)/Some(false)/None: {verdicts:?}"
    );
    assert_stats_parity(lib, |session| {
        for args in &corpus {
            for fuel in fuels {
                session.check(rel, fuel, fuel, args);
            }
        }
    });
}

#[test]
fn stlc_vm_matches_closure_on_typing() {
    let stlc = Stlc::new();
    let lib = stlc.library();
    let rel = stlc.typing_relation();
    assert!(lib.vm_compiled(rel), "stlc typing plan should compile");
    let vm = lib.fork().with_vm();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut corpus: Vec<Vec<Value>> = Vec::new();
    while corpus.len() < 60 {
        let ty = stlc.random_ty(2, &mut rng);
        if let Some(e) = stlc.handwritten_gen(&[], &ty, 4, &mut rng) {
            // Half the corpus gets a mismatched type so ill-typed
            // searches (deep backtracking) are covered too.
            let ty = if corpus.len().is_multiple_of(2) {
                ty
            } else {
                stlc.random_ty(2, &mut rng)
            };
            corpus.push(vec![stlc.ctx(&[]), e, ty]);
        }
    }
    for args in &corpus {
        for fuel in [0, 6, 40] {
            assert_eq!(
                vm.check(rel, fuel, fuel, args),
                lib.check(rel, fuel, fuel, args),
                "fuel {fuel} on {args:?}"
            );
        }
    }
    assert_stats_parity(lib, |session| {
        for args in &corpus {
            session.check(rel, 40, 40, args);
        }
    });
}

#[test]
fn ifc_vm_matches_closure_on_indist() {
    let ifc = Ifc::new();
    let lib = ifc.library();
    let rel = ifc.indist_relation();
    assert!(lib.vm_compiled(rel), "ifc indist plan should compile");
    let vm = lib.fork().with_vm();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut corpus: Vec<Vec<Value>> = Vec::new();
    for i in 0..60 {
        let (_, m1, m2) = ifc.gen_indist_pair(6, &mut rng);
        // Even entries stay indistinguishable; odd entries pair two
        // independent machines so `Some(false)` occurs as well.
        let v1 = ifc.machine_value(&m1);
        let v2 = if i % 2 == 0 {
            ifc.machine_value(&m2)
        } else {
            let (_, other, _) = ifc.gen_indist_pair(6, &mut rng);
            ifc.machine_value(&other)
        };
        corpus.push(vec![v1, v2]);
    }
    for args in &corpus {
        for fuel in [0, 8, 64] {
            assert_eq!(
                vm.check(rel, fuel, fuel, args),
                lib.check(rel, fuel, fuel, args),
                "fuel {fuel}"
            );
            for steps in STEP_LADDER {
                let budget = || Budget::unlimited().with_steps(steps);
                assert_eq!(
                    vm.try_check(rel, fuel, fuel, args, budget()),
                    lib.try_check(rel, fuel, fuel, args, budget()),
                    "steps {steps} fuel {fuel}"
                );
            }
        }
    }
    assert_stats_parity(lib, |session| {
        for args in &corpus {
            session.check(rel, 64, 64, args);
        }
    });
}

#[test]
fn memoized_vm_session_matches_memoized_closure_session() {
    let bst = Bst::new();
    let plain = bst.library();
    let rel = bst.relation();
    let closure_memo = plain.fork().with_memo();
    let vm_memo = plain.fork().with_memo().with_vm();
    let corpus = bst_corpus(&bst, 120, 41);
    // Ascending fuels: later sweeps answer from entries the earlier
    // sweeps cached (joint fuel monotonicity), on both backends.
    for fuel in [16u64, 64] {
        for args in &corpus {
            assert_eq!(
                vm_memo.check(rel, fuel, fuel, args),
                closure_memo.check(rel, fuel, fuel, args),
                "fuel {fuel}"
            );
        }
    }
    let (c, v) = (closure_memo.memo_stats(), vm_memo.memo_stats());
    assert!(v.hits > 0, "the VM session should reuse entries: {v:?}");
    assert_eq!(
        (c.entries, c.hits, c.misses),
        (v.entries, v.hits, v.misses),
        "identical search trees must populate identical tables"
    );
}

#[test]
fn shared_serving_sessions_agree_across_backends() {
    let bst = Bst::new();
    let rel = bst.relation();
    let corpus = bst_corpus(&bst, 60, 23);
    let run = |use_vm: bool| {
        let config = ServeConfig {
            shards: 4,
            shard_capacity: 1 << 10,
            steps_per_request: 1 << 16,
            max_retries: 2,
            use_vm,
            ..ServeConfig::default()
        };
        let server = Server::new(bst.library().fork().shared(), config, Budget::unlimited());
        let session = server.session();
        assert_eq!(session.library().vm_enabled(), use_vm);
        // Two passes: the second answers mostly from the shared table.
        let first = session.check_batch(rel, 64, &corpus);
        let second = session.check_batch(rel, 64, &corpus);
        (first, second, server.stats())
    };
    let (c1, c2, cstats) = run(false);
    let (v1, v2, vstats) = run(true);
    assert_eq!(v1, c1, "first serving pass must agree tuple-for-tuple");
    assert_eq!(v2, c2, "memo-warm serving pass must agree");
    assert_eq!(
        (cstats.entries, cstats.hits),
        (vstats.entries, vstats.hits),
        "both backends must drive the shared table identically"
    );
}
