//! # indrel — computing correctly with inductive relations
//!
//! A Rust reproduction of *Computing Correctly with Inductive
//! Relations* (Paraskevopoulou, Eline, Lampropoulos — PLDI 2022): a
//! unifying framework that extracts three kinds of computational
//! content from inductively defined relations —
//!
//! * **checkers**: semi-decision procedures valued in the three-valued
//!   type `Option<bool>` (`Some(true)` / `Some(false)` / out-of-fuel
//!   `None`),
//! * **enumerators**: bounded lazy streams of satisfying assignments,
//! * **random generators**: QuickCheck-style samplers of satisfying
//!   assignments,
//!
//! all derived by three instantiations of one algorithm, and each
//! validated post-hoc for soundness, completeness, and monotonicity
//! against an independent reference semantics (the translation-
//! validation analogue of the paper's Ltac2 proofs).
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! one roof and provides a [`prelude`]. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduction of the paper's
//! evaluation.
//!
//! # Quick start
//!
//! ```
//! use indrel::prelude::*;
//!
//! // 1. Write an inductive relation in the Coq-flavoured surface
//! //    syntax.
//! let mut universe = Universe::new();
//! let mut relations = RelEnv::new();
//! parse_program(&mut universe, &mut relations, r"
//!     rel le : nat nat :=
//!     | le_n : forall n, le n n
//!     | le_S : forall n m, le n m -> le n (S m)
//!     .
//! ").unwrap();
//! let le = relations.rel_id("le").unwrap();
//!
//! // 2. Derive computations.
//! let mut builder = LibraryBuilder::new(universe, relations);
//! builder.derive_checker(le).unwrap();
//! builder.derive_producer(le, Mode::producer(2, &[0])).unwrap();
//! let lib = builder.build();
//!
//! // 3. Check...
//! assert_eq!(lib.check(le, 20, 20, &[Value::nat(3), Value::nat(7)]), Some(true));
//! // ...enumerate...
//! let below: Vec<_> = lib
//!     .enumerate(le, &Mode::producer(2, &[0]), 8, 8, &[Value::nat(3)])
//!     .values();
//! assert_eq!(below.len(), 4); // 0, 1, 2, 3
//! // ...and validate (translation validation, §5 of the paper).
//! let cert = Validator::new(lib).unwrap().validate_checker(le);
//! assert!(cert.is_valid());
//! ```

pub use indrel_bst as bst;
pub use indrel_core as core;
pub use indrel_corpus as corpus;
pub use indrel_fuzz as fuzz;
pub use indrel_ifc as ifc;
pub use indrel_pbt as pbt;
pub use indrel_producers as producers;
pub use indrel_reflect as reflect;
pub use indrel_rel as rel;
pub use indrel_semantics as semantics;
pub use indrel_stlc as stlc;
pub use indrel_term as term;
pub use indrel_validate as validate;

/// The common imports for working with the framework.
pub mod prelude {
    pub use indrel_core::{
        Budget, BudgetPool, BudgetedStream, CostProfile, DeriveError, DeriveOptions, ExecError,
        ExecProbe, Exhaustion, FlightRecorder, InstanceKind, Library, LibraryBuilder, MemoStats,
        Mode, Permit, Plan, PremiseCost, ReplanReport, RequestSpan, Resource, SearchStats,
        ServeConfig, Server, Session, SharedLibrary, SharedMemo, TraceProbe,
    };
    pub use indrel_pbt::{Labels, Parallelism, RunReport, Runner, TestOutcome};
    pub use indrel_producers::{
        backtracking, bind_ec, cand, cnot, Counter, Determinism, EStream, Gauge, HistogramSnapshot,
        Log2Histogram, MetricsRegistry, MetricsSnapshot, Outcome, RequestOutcome,
    };
    pub use indrel_rel::parse::{parse_program, parse_relation};
    pub use indrel_rel::{Premise, RelEnv, Relation, Rule, RuleBuilder};
    pub use indrel_semantics::{Proof, ProofSystem, Tv};
    pub use indrel_term::{
        CtorId, DtId, Env, FunId, Pattern, RelId, TermExpr, TypeExpr, Universe, Value, VarId,
    };
    pub use indrel_validate::{
        CaseReport, Certificate, ValidateError, ValidationParams, Validator,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Universe::new();
        let _ = RelEnv::new();
        let _ = Mode::checker(1);
    }
}
