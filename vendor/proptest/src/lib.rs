//! Offline shim for [`proptest` 1.x](https://docs.rs/proptest/1).
//!
//! The build environment has no network access, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait (sampling only — no shrinking), range /
//! [`any`] / [`collection::vec`] / [`option::of`] / `Just` strategies,
//! `prop_map` and [`prop_oneof!`], and the [`proptest!`] /
//! `prop_assert*!` macros. Each generated test runs a fixed number of
//! seeded cases; the seed is derived from the test's name, so runs are
//! fully deterministic. Failing cases are reported with the case index
//! and message (inputs are not shrunk).

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case plumbing: errors and configuration.

    use std::fmt;

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion / property violation.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// A rejected case (counted as a failure by this shim).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 128 }
        }
    }
}

/// Deterministic sampling source handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the source. The [`proptest!`] macro derives the seed from
    /// the test name, so every run of a given test sees the same cases.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Derives a stable 64-bit seed from a test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for sampling values (no shrinking in this shim).
    pub trait Strategy {
        /// The type of sampled values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between strategies (the [`crate::prop_oneof!`]
    /// macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub use strategy::{BoxedStrategy, Strategy};

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option`s (≈3/4 `Some`, like the real crate's
    /// default weight).
    pub struct OptionStrategy<S>(S);

    /// `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Module alias so `proptest::collection::vec` resolves inside
    /// `use proptest::prelude::*` consumers.
    pub use crate::{collection, option};
}

/// Asserts a condition inside a [`proptest!`] body, returning a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// Declares seeded property tests; see the crate docs for the supported
/// subset (named-argument bindings with `in`, an optional leading
/// `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest {}: case {} of {} failed: {}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let x = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-4i32..=4).sample(&mut rng);
            assert!((-4..=4).contains(&y));
        }
    }

    #[test]
    fn oneof_union_covers_options() {
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn vec_and_option_strategies() {
        let s = collection::vec(0u64..5, 0..8);
        let o = option::of(0u64..5);
        let mut rng = crate::TestRng::new(3);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 8);
            assert!(v.iter().all(|&x| x < 5));
            match o.sample(&mut rng) {
                None => saw_none = true,
                Some(x) => {
                    assert!(x < 5);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(a in 0u64..100, mut v in collection::vec(0u64..10, 1..4)) {
            v.sort_unstable();
            prop_assert!(a < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
