//! Offline shim for [`criterion` 0.5](https://docs.rs/criterion/0.5).
//!
//! The build environment has no network access, so this crate provides
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion`] with `benchmark_group` / `sample_size`,
//! [`BenchmarkGroup`] with `bench_function` / `bench_with_input` /
//! `finish`, [`Bencher`] with `iter` / `iter_batched`, plus
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's full statistical analysis it takes `sample_size` timed
//! samples per benchmark (after a short calibration to pick an
//! iteration count) and prints the per-iteration min / median / mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver; holds the default sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark, printed as `name/param`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// Just the parameter (used when the function name already names
    /// the benchmark).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// How `iter_batched` groups setup outputs; the shim times one routine
/// call per setup call regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; records the timing measurements.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Picks an iteration count targeting ~5ms per sample, then takes
/// `samples` measurements and prints per-iteration statistics.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut iters = 1u64;
    loop {
        let t = run_once(&mut f, iters);
        if t >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = if t.is_zero() {
            iters * 8
        } else {
            let target = Duration::from_millis(5).as_nanos() as u64;
            (iters.saturating_mul(target / (t.as_nanos() as u64).max(1)))
                .clamp(iters + 1, iters * 8)
        };
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| run_once(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<50} min {:>12} median {:>12} mean {:>12} ({} iters x {} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        iters,
        samples,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group; supports both the plain list form and
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::new("input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
