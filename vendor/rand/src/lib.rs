//! Offline shim for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! The build environment for this repository has no network access, so
//! the real crate cannot be fetched. This shim reimplements exactly the
//! subset of the 0.8 API surface the workspace uses — [`RngCore`],
//! [`SeedableRng`], [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] — with compatible signatures, so the workspace
//! switches to the real crate by deleting one `[patch.crates-io]`
//! entry. Streams are deterministic per seed (xoshiro256++ seeded via
//! SplitMix64, the same construction the real `SmallRng` uses on
//! 64-bit targets), though the exact streams differ from upstream.

/// The core of a random number generator, object-safe.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// Convenience methods on every [`RngCore`] (blanket-implemented, like
/// the real crate's `Rng`).
pub trait Rng: RngCore {
    /// Uniformly samples from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 bits of mantissa, the standard float-in-unit-interval trick.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 —
    /// the same convention as the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }

    /// Builds the generator seeded from the `stream`-th deterministic
    /// substream of `root`.
    ///
    /// This is an extension beyond the `rand` 0.8 surface (the real
    /// crate has no stream-splitting on `SmallRng`): the root seed is
    /// diffused through SplitMix64, perturbed by the stream index
    /// scaled by the SplitMix64 golden-gamma constant, and diffused
    /// again, so nearby `(root, stream)` pairs land on statistically
    /// independent streams. The derivation depends only on the two
    /// arguments — never on thread identity or call order — which is
    /// what makes `(seed, index)` a stable reproduction token for
    /// parallel consumers.
    fn seed_from_u64_stream(root: u64, stream: u64) -> Self {
        let mut state = root;
        let mixed_root = splitmix64(&mut state);
        let mut stream_state = mixed_root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let key = splitmix64(&mut stream_state);
        Self::seed_from_u64(key)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.step();
                for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! The sliver of the distributions module [`super::Rng::gen_range`]
    //! needs.

    pub mod uniform {
        //! Uniform range sampling.

        use crate::RngCore;

        /// A range that can be sampled from uniformly.
        pub trait SampleRange<T> {
            /// Samples one value; panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        // Unbiased sampling of `[0, n)` by rejecting the final partial
        // slice of the u64 space (Lemire-style threshold).
        pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
            debug_assert!(n > 0);
            if n.is_power_of_two() {
                return rng.next_u64() & (n - 1);
            }
            let zone = u64::MAX - (u64::MAX % n) - 1;
            loop {
                let x = rng.next_u64();
                if x <= zone {
                    return x % n;
                }
            }
        }

        macro_rules! impl_unsigned_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for ::core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as u64) - (self.start as u64);
                        self.start + below(rng, span) as $t
                    }
                }

                impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as u64) - (lo as u64);
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo + below(rng, span + 1) as $t
                    }
                }
            )*};
        }

        macro_rules! impl_signed_range {
            ($($t:ty as $u:ty),*) => {$(
                impl SampleRange<$t> for ::core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                        self.start.wrapping_add(below(rng, span) as $t)
                    }
                }

                impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(below(rng, span + 1) as $t)
                    }
                }
            )*};
        }

        impl_unsigned_range!(u8, u16, u32, u64, usize);
        impl_signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 sampled: {seen:?}");
    }

    #[test]
    fn works_through_dyn_and_borrowed_receivers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = Rng::gen_range(&mut *dynrng, 0u64..10);
        assert!(x < 10);
        let mut bytes = [0u8; 13];
        dynrng.fill_bytes(&mut bytes);
        assert_ne!(bytes, [0u8; 13]);
    }

    #[test]
    fn stream_split_is_deterministic_and_independent() {
        let mut a = SmallRng::seed_from_u64_stream(42, 3);
        let mut b = SmallRng::seed_from_u64_stream(42, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Neighbouring streams and neighbouring roots both diverge.
        let mut c = SmallRng::seed_from_u64_stream(42, 4);
        let mut d = SmallRng::seed_from_u64_stream(43, 3);
        let x = a.next_u64();
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
        // Stream 0 is not the plain seed (streams form their own family).
        let mut e = SmallRng::seed_from_u64_stream(42, 0);
        let mut f = SmallRng::seed_from_u64(42);
        assert_ne!(e.next_u64(), f.next_u64());
    }

    #[test]
    fn stream_split_is_frozen() {
        // Reproduction tokens `(seed, index)` published by the PBT
        // runner embed this derivation; changing it silently would
        // invalidate every recorded token. Golden values pin it down.
        let mut g = SmallRng::seed_from_u64_stream(0, 0);
        let g00 = g.next_u64();
        let mut g = SmallRng::seed_from_u64_stream(1, 7);
        let g17 = g.next_u64();
        assert_eq!(
            (g00, g17),
            (GOLDEN_0_0, GOLDEN_1_7),
            "stream derivation changed; parallel repro tokens are now invalid"
        );
    }

    const GOLDEN_0_0: u64 = 0x3ED1_653F_0682_083A;
    const GOLDEN_1_7: u64 = 0x3E55_7403_CBAB_E908;

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
